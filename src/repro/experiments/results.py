"""Aggregation and export of experiment-batch results.

A :class:`CellResult` pairs one :class:`~repro.experiments.spec.ExperimentCell`
with the flat metric dictionary its run produced (delivery rate, detours,
convergence rounds, ...).  A :class:`BatchResult` holds every cell result of
one :func:`~repro.experiments.runner.run_batch` invocation and knows how to

* export itself as canonical JSON (sorted keys, fixed cell order) — two runs
  of the same spec produce byte-identical output regardless of worker count;
* pivot any metric into rows/columns over cell attributes, which is what the
  comparison tables in the benchmarks and examples are made of.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.spec import ExperimentCell, ExperimentSpec
from repro.obs.telemetry import SweepTelemetry

#: Version tag of the batch-result wire/file payload.  The JSON a
#: ``repro-mesh sweep --out`` file holds and the body the HTTP service
#: serves for a finished job are the same ``repro.result/v1`` document —
#: byte for byte.
RESULT_SCHEMA = "repro.result/v1"


@dataclass(frozen=True)
class CellResult:
    """Metrics produced by running one experiment cell."""

    cell: ExperimentCell
    metrics: Dict[str, float]

    def to_dict(self) -> dict:
        return {
            "index": self.cell.index,
            "mode": self.cell.mode,
            "shape": list(self.cell.shape),
            "policy": self.cell.policy,
            "faults": self.cell.faults,
            "interval": self.cell.interval,
            "lam": self.cell.lam,
            "messages": self.cell.messages,
            "seed": self.cell.seed,
            "cell_seed": self.cell.cell_seed,
            "contention": self.cell.contention,
            "flits": self.cell.flits,
            "scenario": self.cell.scenario,
            "rate": self.cell.rate,
            "fault_rate": self.cell.fault_rate,
            "repair_after": self.cell.repair_after,
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
        }


@dataclass(frozen=True)
class BatchResult:
    """Every cell result of one batch run, in cell order."""

    spec: ExperimentSpec
    results: Tuple[CellResult, ...]

    #: Execution telemetry of the batch run (shard timings, worker
    #: utilization, cache stats) — observational only: excluded from
    #: equality and from :meth:`to_dict`, so the canonical JSON stays
    #: byte-identical across engines, worker counts and cache states.
    telemetry: Optional[SweepTelemetry] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "results", tuple(sorted(self.results, key=lambda r: r.cell.index))
        )

    def __len__(self) -> int:
        return len(self.results)

    @classmethod
    def assemble(
        cls,
        spec: ExperimentSpec,
        results: Sequence[Optional[CellResult]],
        telemetry: Optional[SweepTelemetry] = None,
    ) -> "BatchResult":
        """Build a batch from sparse per-index results, validating coverage.

        The sharded/cached executor lands results out of order into an
        index-addressed list (cache hits first, then shard completions);
        assembling through here turns a scheduling bug — a cell that never
        landed — into a loud error instead of a ``None`` buried in a tuple.
        """
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            raise ValueError(
                f"batch incomplete: {len(missing)} of {len(results)} cells "
                f"never produced a result (first missing index {missing[0]})"
            )
        return cls(
            spec=spec,
            results=tuple(results),  # type: ignore[arg-type]
            telemetry=telemetry,
        )

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """The canonical ``repro.result/v1`` payload."""
        return {
            "schema": RESULT_SCHEMA,
            "spec": self.spec.to_dict(),
            "cells": [r.to_dict() for r in self.results],
        }

    def to_json(self, *, indent: int = 2) -> str:
        """Canonical JSON: sorted keys, cells in grid order.

        Contains nothing run-dependent (no timestamps, no wall-clock), so
        serial and parallel runs of the same spec serialize byte-identically.
        """
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, data: object) -> "BatchResult":
        """Parse the canonical ``repro.result/v1`` payload back into a batch.

        The embedded spec goes through
        :meth:`~repro.experiments.spec.ExperimentSpec.from_dict` — the same
        parser every other door uses — and each cell entry is re-attached
        to the spec's own expansion at its grid index, with the stored
        ``cell_seed`` cross-checked so a payload whose cells do not belong
        to its spec is rejected rather than silently re-labeled.
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"result payload must be a JSON object, got {type(data).__name__}"
            )
        schema = data.get("schema")
        if schema != RESULT_SCHEMA:
            raise ValueError(
                f"unsupported result schema {schema!r} "
                f"(this build speaks {RESULT_SCHEMA!r})"
            )
        spec = ExperimentSpec.from_dict(data.get("spec"))
        cells = spec.cells()
        entries = data.get("cells")
        if not isinstance(entries, list):
            raise ValueError("result field 'cells': expected a list")
        results = []
        for entry in entries:
            if not isinstance(entry, dict) or "index" not in entry:
                raise ValueError("result cell entries need an 'index' field")
            index = entry["index"]
            if not isinstance(index, int) or not 0 <= index < len(cells):
                raise ValueError(
                    f"result cell index {index!r} outside the spec's "
                    f"{len(cells)}-cell grid"
                )
            cell = cells[index]
            if entry.get("cell_seed") != cell.cell_seed:
                raise ValueError(
                    f"result cell {index} does not match the embedded spec "
                    "(cell_seed mismatch)"
                )
            metrics = entry.get("metrics")
            if not isinstance(metrics, dict):
                raise ValueError(f"result cell {index}: 'metrics' must be an object")
            results.append(CellResult(cell=cell, metrics=dict(metrics)))
        return cls(spec=spec, results=tuple(results))

    @classmethod
    def from_json(cls, text: str) -> "BatchResult":
        """Parse the JSON text :meth:`to_json` produced."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"result payload is not valid JSON: {exc}")
        return cls.from_dict(payload)

    def telemetry_dict(self) -> Optional[dict]:
        """The versioned telemetry payload, or ``None`` when none was
        collected.  Kept out of :meth:`to_dict` by design — telemetry is
        wall-clock-dependent and must never enter the canonical export."""
        if self.telemetry is None:
            return None
        return self.telemetry.to_dict()

    # ------------------------------------------------------------------ #
    # table helpers
    # ------------------------------------------------------------------ #
    def select(self, **attrs: object) -> List[CellResult]:
        """Cell results whose cell attributes match every given value."""
        out = []
        for result in self.results:
            if all(getattr(result.cell, k) == v for k, v in attrs.items()):
                out.append(result)
        return out

    def pivot(
        self, metric: str, *, rows: str, cols: str = "policy"
    ) -> Dict[object, Dict[object, float]]:
        """Pivot ``metric`` into a ``{row_value: {col_value: mean}}`` table.

        ``rows``/``cols`` name :class:`ExperimentCell` attributes (e.g.
        ``"faults"``, ``"lam"``, ``"shape"``, ``"policy"``).  Cells sharing a
        (row, col) coordinate — replicate seeds, say — are averaged.
        """
        sums: Dict[object, Dict[object, List[float]]] = {}
        for result in self.results:
            row = getattr(result.cell, rows)
            col = getattr(result.cell, cols)
            sums.setdefault(row, {}).setdefault(col, []).append(result.metrics[metric])
        return {
            row: {col: sum(vals) / len(vals) for col, vals in by_col.items()}
            for row, by_col in sums.items()
        }

    def metric_values(self, metric: str) -> List[float]:
        """The metric across every cell, in cell order."""
        return [r.metrics[metric] for r in self.results]
