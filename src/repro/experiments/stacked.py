"""Stacked multi-cell execution: same-shape sweep cells step together.

A sweep grid usually varies seed, fault count, policy or traffic over one
mesh shape.  The serial runner steps each cell's simulator to completion
alone, so every simulation step pays the fixed numpy dispatch cost of the
vectorized classification on a handful of in-flight probes.  The stacked
engine instead joins every probe-table-eligible simulate-mode cell of one
shape onto a shared :class:`~repro.core.probe_table.ProbeTable` and runs
the group in lockstep: one classification pass per step covers all cells'
probes, amortizing the fixed cost across the whole group.

Results are byte-identical to the serial runner's.  Cells stay fully
independent — each keeps its own information state, traffic source,
statistics and circuit ledger — and the shared classification is a pure
per-row function, so stacking changes *where* rows are classified, never
what any cell observes.  That independence is also why the sharded
executor (:mod:`repro.experiments.shard`) may split one shape group into
several sub-groups across worker processes: group membership is invisible
to every member.  Cells the probe table cannot host (scalar backend,
non-Algorithm routers, throughput/offline modes) fall back to the serial
path, cell by cell.

:func:`run_cells_stacked` is the composable unit — it runs any indexed
subset of a grid's cells and is what a sharded pool worker executes;
:func:`run_batch_stacked` wraps it over a whole spec (the historic
``engine="stacked"`` single-process entry point).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.probe_table import ProbeTable
from repro.experiments.results import BatchResult, CellResult
from repro.experiments.spec import ExperimentCell, ExperimentSpec

if False:  # pragma: no cover - import cycle guard for annotations
    from repro.simulator.engine import Simulator

#: One stacked-group member: grid position, cell, its joined simulator.
_Member = Tuple[int, ExperimentCell, "Simulator"]

#: Callback fired as each cell's result lands: ``(grid index, result)``.
OnResult = Callable[[int, CellResult], None]


def _run_group(
    table: ProbeTable,
    members: List[_Member],
    land: OnResult,
) -> None:
    """Step one shape group in lockstep until every member drains.

    Every active member executes exactly the serial step sequence —
    information phases per simulator, then one shared
    :meth:`ProbeTable.run_step` over all active cells — so each member's
    step ``t`` is indistinguishable from its solo run.  Members that drain
    (or hit their step budget) finalize immediately through
    :meth:`Simulator.run`, which executes zero further steps and flushes.
    """
    from repro.experiments.runner import _simulate_metrics

    active = members
    t = 0
    while active:
        stepping: List[_Member] = []
        for item in active:
            index, cell, sim = item
            if sim._step < sim.config.max_steps and sim._work_remaining():
                stepping.append(item)
            else:
                land(index, CellResult(
                    cell=cell, metrics=_simulate_metrics(cell, sim.run())
                ))
        active = stepping
        if not stepping:
            break
        for _, _, sim in stepping:
            sim._step_information(t)
        table.run_step(t, tuple(sim._table_cell for _, _, sim in stepping))
        for _, _, sim in stepping:
            sim._step += 1
            sim.stats.steps = sim._step
        t += 1


def run_cells_stacked(
    cells: Sequence[Tuple[int, ExperimentCell]],
    *,
    on_result: Optional[OnResult] = None,
) -> List[Tuple[int, CellResult]]:
    """Run an indexed subset of a grid, stacking what the table can host.

    Probe-table-eligible simulate cells are grouped by mesh shape and
    stepped in lockstep on one shared table per group; everything else
    (other modes, ineligible policies/backends) runs serially through the
    same construction paths as the serial runner, so results are
    byte-identical either way.  Returns ``(grid index, result)`` pairs in
    completion order; ``on_result`` additionally fires as each lands.
    This function is self-contained and picklable work — it is what a
    sharded pool worker executes for a stacked shard.
    """
    from repro.experiments.runner import _build_simulate_sim, _simulate_metrics, run_cell

    out: List[Tuple[int, CellResult]] = []

    def land(index: int, result: CellResult) -> None:
        out.append((index, result))
        if on_result is not None:
            on_result(index, result)

    groups: Dict[Tuple[int, ...], List[_Member]] = {}
    for index, cell in cells:
        if cell.mode != "simulate":
            land(index, run_cell(cell))
            continue
        sim = _build_simulate_sim(cell)
        if sim._table is None:
            # Not probe-table eligible: run this simulator to completion
            # alone (same construction path as the serial runner).
            land(index, CellResult(
                cell=cell, metrics=_simulate_metrics(cell, sim.run())
            ))
            continue
        groups.setdefault(cell.shape, []).append((index, cell, sim))

    for members in groups.values():
        table = ProbeTable(members[0][2].mesh)
        for _, _, sim in members:
            sim._join_table(table)
        _run_group(table, members, land)

    return out


def run_batch_stacked(
    spec: ExperimentSpec,
    *,
    on_cell_done: Optional[Callable[[CellResult], None]] = None,
) -> BatchResult:
    """Run ``spec`` with same-shape simulate cells stacked on shared tables.

    .. deprecated::
        The historic engine-specific entry point, superseded by
        ``run_batch(spec, engine="stacked")`` — which adds worker fan-out,
        caching and telemetry on the same lockstep execution.  Kept
        working for one release.
    """
    import warnings

    warnings.warn(
        'run_batch_stacked is deprecated: use run_batch(spec, engine="stacked")',
        DeprecationWarning,
        stacklevel=2,
    )
    cells = spec.cells()
    results: List[Optional[CellResult]] = [None] * len(cells)

    def land(index: int, result: CellResult) -> None:
        results[index] = result
        if on_cell_done is not None:
            on_cell_done(result)

    run_cells_stacked(list(enumerate(cells)), on_result=land)
    return BatchResult(spec=spec, results=tuple(results))  # type: ignore[arg-type]
