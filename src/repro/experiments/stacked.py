"""Stacked multi-cell execution: same-shape sweep cells step together.

A sweep grid usually varies seed, fault count, policy or traffic over one
mesh shape.  The serial runner steps each cell's simulator to completion
alone, so every simulation step pays the fixed numpy dispatch cost of the
vectorized classification on a handful of in-flight probes.  The stacked
engine instead joins every probe-table-eligible simulate-mode cell of one
shape onto a shared :class:`~repro.core.probe_table.ProbeTable` and runs
the group in lockstep: one classification pass per step covers all cells'
probes, amortizing the fixed cost across the whole group.

Results are byte-identical to the serial runner's.  Cells stay fully
independent — each keeps its own information state, traffic source,
statistics and circuit ledger — and the shared classification is a pure
per-row function, so stacking changes *where* rows are classified, never
what any cell observes.  Cells the probe table cannot host (scalar
backend, non-Algorithm routers, throughput/offline modes) fall back to the
serial path, cell by cell.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.probe_table import ProbeTable
from repro.experiments.results import BatchResult, CellResult
from repro.experiments.spec import ExperimentCell, ExperimentSpec

if False:  # pragma: no cover - import cycle guard for annotations
    from repro.simulator.engine import Simulator

#: One stacked-group member: grid position, cell, its joined simulator.
_Member = Tuple[int, ExperimentCell, "Simulator"]


def _run_group(
    table: ProbeTable,
    members: List[_Member],
    results: List[Optional[CellResult]],
    on_cell_done: Optional[Callable[[CellResult], None]],
) -> None:
    """Step one shape group in lockstep until every member drains.

    Every active member executes exactly the serial step sequence —
    information phases per simulator, then one shared
    :meth:`ProbeTable.run_step` over all active cells — so each member's
    step ``t`` is indistinguishable from its solo run.  Members that drain
    (or hit their step budget) finalize immediately through
    :meth:`Simulator.run`, which executes zero further steps and flushes.
    """
    from repro.experiments.runner import _simulate_metrics

    active = members
    t = 0
    while active:
        stepping: List[_Member] = []
        for item in active:
            index, cell, sim = item
            if sim._step < sim.config.max_steps and sim._work_remaining():
                stepping.append(item)
            else:
                result = CellResult(
                    cell=cell, metrics=_simulate_metrics(cell, sim.run())
                )
                results[index] = result
                if on_cell_done is not None:
                    on_cell_done(result)
        active = stepping
        if not stepping:
            break
        for _, _, sim in stepping:
            sim._step_information(t)
        table.run_step(t, tuple(sim._table_cell for _, _, sim in stepping))
        for _, _, sim in stepping:
            sim._step += 1
            sim.stats.steps = sim._step
        t += 1


def run_batch_stacked(
    spec: ExperimentSpec,
    *,
    on_cell_done: Optional[Callable[[CellResult], None]] = None,
) -> BatchResult:
    """Run ``spec`` with same-shape simulate cells stacked on shared tables.

    The drop-in single-process alternative to the serial
    :func:`~repro.experiments.runner.run_batch` loop (reachable there via
    ``engine="stacked"``): identical results in grid order, with
    ``on_cell_done`` fired in completion order.
    """
    from repro.experiments.runner import _build_simulate_sim, run_cell

    cells = spec.cells()
    results: List[Optional[CellResult]] = [None] * len(cells)
    groups: Dict[Tuple[int, ...], List[_Member]] = {}
    for index, cell in enumerate(cells):
        if cell.mode != "simulate":
            result = run_cell(cell)
            results[index] = result
            if on_cell_done is not None:
                on_cell_done(result)
            continue
        sim = _build_simulate_sim(cell)
        if sim._table is None:
            # Not probe-table eligible: run this simulator to completion
            # alone (same construction path as the serial runner).
            from repro.experiments.runner import _simulate_metrics

            result = CellResult(
                cell=cell, metrics=_simulate_metrics(cell, sim.run())
            )
            results[index] = result
            if on_cell_done is not None:
                on_cell_done(result)
            continue
        groups.setdefault(cell.shape, []).append((index, cell, sim))

    for members in groups.values():
        table = ProbeTable(members[0][2].mesh)
        for _, _, sim in members:
            sim._join_table(table)
        _run_group(table, members, results, on_cell_done)

    return BatchResult(spec=spec, results=tuple(results))  # type: ignore[arg-type]
