"""Execution of experiment grids: serial, stacked, sharded and cached.

:func:`run_cell` turns one :class:`~repro.experiments.spec.ExperimentCell`
into a :class:`~repro.experiments.results.CellResult`; :func:`run_batch`
runs a whole grid through one of three engines:

* ``engine="serial"`` — one cell at a time; ``workers > 1`` fans chunks of
  cells out over a process pool and fires the progress hook in completion
  order (results stay in grid order);
* ``engine="stacked"`` — same-shape probe-table-eligible simulate cells
  step in lockstep on shared :class:`~repro.core.probe_table.ProbeTable`
  groups (see :mod:`repro.experiments.stacked`);
* ``engine="auto"`` (the default) — the composition of both: the planner
  (:mod:`repro.experiments.shard`) partitions cells into stacked and
  serial shards and dispatches them across a *persistent*
  :class:`~concurrent.futures.ProcessPoolExecutor`, so ``workers=4`` runs
  four stacked groups concurrently instead of choosing between the two
  fast paths.

Every cell is self-contained and rebuilds its scenario from primitive cell
parameters plus the deterministic ``cell_seed``, so cells are cheap to
pickle, workers need no shared state, and a batch produces **identical
results for any worker count and any engine** — the JSON export of a
serial run, a 4-worker run and an auto-sharded run are byte-for-byte
equal.

Passing a :class:`~repro.experiments.cache.ResultCache` makes repeated
work free: cells whose fingerprint is already on disk skip simulation
entirely, and misses are persisted atomically as each result lands, so an
interrupted sweep resumes from its cache and overlapping sweeps cost only
cache reads.  The cache never appears in the exported JSON — cold and
warm runs serialize byte-identically.
"""

from __future__ import annotations

import atexit
import os
import signal
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from math import ceil
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.metrics import summarize_routes
from repro.backend import ENV_VAR as BACKEND_ENV_VAR
from repro.backend import resolve_backend
from repro.core.block_construction import build_blocks
from repro.experiments.cache import ResultCache
from repro.experiments.results import BatchResult, CellResult
from repro.experiments.shard import (
    SERIAL_CHUNKS_PER_WORKER,
    Shard,
    _split,
    plan_shards,
)
from repro.experiments.spec import ExperimentCell, ExperimentSpec
from repro.faults.injection import clustered_faults, dynamic_schedule, uniform_random_faults
from repro.mesh.topology import Mesh
from repro.obs.telemetry import PoolIncident, ShardRecord, SweepTelemetry
from repro.routing import resolve_router
from repro.simulator.engine import SimulationConfig, Simulator
from repro.workloads.congestion import (
    bursty_scenario,
    hotspot_scenario,
    transpose_scenario,
)
from repro.workloads.traffic import random_pairs, to_traffic

Coord = Tuple[int, ...]

#: Engines :func:`run_batch` accepts.
ENGINES = ("auto", "serial", "stacked")


class BatchCancelled(BaseException):
    """Raised *by an ``on_cell_done`` callback* to abort a batch cleanly.

    This is the one sanctioned way to stop :func:`run_batch` mid-grid (the
    HTTP service's job cancellation rides it): it propagates out of the
    batch at the next cell boundary, while every *other* exception a
    callback raises is suppressed and recorded — a broken progress hook
    must never cost the sweep.  Deliberately a ``BaseException`` so a
    careless ``except Exception`` inside a callback can't swallow it.
    """


def _offline_faults(
    mesh: Mesh, count: int, rng: np.random.Generator
) -> List[Coord]:
    """Half the faults clustered at the mesh centre, half spread uniformly.

    Clustered faults coalesce into a sizable block (the interesting case for
    the faulty-block model); the uniform remainder exercises scattered
    single-node blocks.  Seeding the cluster at the centre keeps large
    clusters inside the interior for every seed.
    """
    centre = tuple(s // 2 for s in mesh.shape)
    faults = clustered_faults(mesh, count // 2, rng, spread=3, seed_node=centre)
    faults += uniform_random_faults(mesh, count - len(faults), rng, exclude=faults)
    return faults


def _run_offline_cell(cell: ExperimentCell) -> Dict[str, float]:
    mesh = Mesh(cell.shape)
    rng = np.random.default_rng(cell.cell_seed)
    faults = _offline_faults(mesh, cell.faults, rng)
    labeling = build_blocks(mesh, faults).state
    pairs = random_pairs(
        mesh,
        cell.messages,
        rng,
        min_distance=max(2, mesh.diameter // 2),
        exclude=list(labeling.block_nodes),
    )

    # The router derives whatever information view its policy assumes; its
    # one-slot cache makes the whole batch share a single derivation.
    router = resolve_router(cell.policy)
    routes = [router.route(mesh, labeling, s, d) for s, d in pairs]

    summary = summarize_routes(routes)
    return {
        "routes": float(summary.routes),
        "delivered": float(summary.delivered),
        "delivery_rate": summary.delivery_rate,
        "mean_hops": summary.mean_hops,
        "mean_detours": summary.mean_detours,
        "max_detours": float(summary.max_detours),
        "mean_backtracks": summary.mean_backtracks,
    }


def _simulate_scenario(cell: ExperimentCell):
    """Mesh/schedule/traffic for one simulate-mode cell's traffic family.

    Every family derives from ``cell.cell_seed`` alone, so all policies at
    one configuration point replay the identical scenario.
    """
    if cell.scenario == "hotspot":
        scenario = hotspot_scenario(
            shape=cell.shape,
            messages=cell.messages,
            dynamic_faults=cell.faults,
            interval=cell.interval,
            flits=cell.flits,
            seed=cell.cell_seed,
        )
        return scenario.mesh, scenario.schedule, list(scenario.traffic)
    if cell.scenario == "transpose":
        scenario = transpose_scenario(
            radix=cell.shape[0],
            n_dims=len(cell.shape),
            limit=cell.messages,
            dynamic_faults=cell.faults,
            interval=cell.interval,
            flits=cell.flits,
            seed=cell.cell_seed,
        )
        return scenario.mesh, scenario.schedule, list(scenario.traffic)
    if cell.scenario == "bursty":
        scenario = bursty_scenario(
            shape=cell.shape,
            bursts=max(1, cell.messages // 6),
            burst_size=min(6, cell.messages),
            dynamic_faults=cell.faults,
            interval=cell.interval,
            flits=cell.flits,
            seed=cell.cell_seed,
        )
        return scenario.mesh, scenario.schedule, list(scenario.traffic)
    # "random": the historic sweep construction (cell seeds now also hash
    # the scenario/flits axes, so derived values differ from old exports).
    mesh = Mesh(cell.shape)
    rng = np.random.default_rng(cell.cell_seed)
    fault_nodes = uniform_random_faults(mesh, cell.faults, rng, margin=1)
    schedule = dynamic_schedule(fault_nodes, start_time=2, interval=cell.interval)
    pairs = random_pairs(
        mesh,
        cell.messages,
        rng,
        min_distance=max(1, mesh.diameter // 2),
        exclude=fault_nodes,
    )
    traffic = to_traffic(pairs, start_time=0, spacing=1, tag="sweep", flits=cell.flits)
    return mesh, schedule, traffic


def _build_simulate_sim(cell: ExperimentCell) -> Simulator:
    """The simulator of one simulate-mode cell (shared with the stacked
    runner, so both engines construct byte-identical scenarios)."""
    mesh, schedule, traffic = _simulate_scenario(cell)
    return Simulator(
        mesh,
        schedule=schedule,
        traffic=traffic,
        config=SimulationConfig(
            lam=cell.lam, router=cell.policy, contention=cell.contention
        ),
    )


def _simulate_metrics(cell: ExperimentCell, result) -> Dict[str, float]:
    """Metrics row of one finished simulate-mode run."""
    stats = result.stats
    worst = max(
        (c.steps_to_stabilize(cell.lam) for c in stats.convergence), default=0
    )
    metrics = dict(stats.summary())
    metrics["worst_steps_to_stabilize"] = float(worst)
    metrics["information_cells"] = float(result.information.information_cells())
    return metrics


def _run_simulate_cell(cell: ExperimentCell) -> Dict[str, float]:
    return _simulate_metrics(cell, _build_simulate_sim(cell).run())


def _run_throughput_cell(cell: ExperimentCell) -> Dict[str, float]:
    # Imported lazily: repro.throughput builds on the simulator and the
    # workloads, and its saturation module calls back into run_batch.
    from repro.throughput.measure import MeasurementWindows, run_throughput_point

    result = run_throughput_point(
        cell.shape,
        cell.policy,
        cell.scenario,
        cell.rate,
        faults=cell.faults,
        lam=cell.lam,
        flits=cell.flits,
        seed=cell.cell_seed,
        injection=cell.injection,
        windows=MeasurementWindows(
            warmup=cell.warmup, measure=cell.measure, drain=cell.drain
        ),
        fault_rate=cell.fault_rate,
        repair_after=cell.repair_after,
    )
    return result.to_row()


def run_cell(cell: ExperimentCell) -> CellResult:
    """Execute one cell and return its metrics (pure function of the cell)."""
    if cell.mode == "offline":
        metrics = _run_offline_cell(cell)
    elif cell.mode == "simulate":
        metrics = _run_simulate_cell(cell)
    elif cell.mode == "throughput":
        metrics = _run_throughput_cell(cell)
    else:
        raise ValueError(f"unknown experiment mode {cell.mode!r}")
    return CellResult(cell=cell, metrics=metrics)


# ---------------------------------------------------------------------- #
# worker-side entry points (top-level so they pickle)
# ---------------------------------------------------------------------- #
#: Crash-injection hook for the pool-recovery tests: when this env var
#: names an existing file, the first worker to execute a shard consumes
#: the file and dies with SIGKILL — exactly the abrupt worker death that
#: breaks a :class:`ProcessPoolExecutor`.  Subsequent shard executions
#: find no file and run normally, so the retried work completes.
CRASH_ENV_VAR = "REPRO_TEST_KILL_SHARD"


def _maybe_crash_for_test() -> None:
    sentinel = os.environ.get(CRASH_ENV_VAR)
    if not sentinel:
        return
    try:
        os.unlink(sentinel)
    except OSError:
        return  # another worker already consumed the crash
    os.kill(os.getpid(), signal.SIGKILL)


def _execute_shard(
    shard: Shard, backend: Optional[str] = None
) -> Tuple[List[Tuple[int, CellResult]], float]:
    """Run one shard to completion; the unit a pool worker executes.

    Returns the shard's ``(index, result)`` pairs plus the worker-side wall
    seconds the shard took (the compute-time half of the sweep telemetry).
    ``backend`` pins the worker's hot-loop backend explicitly: the pool is
    persistent, so a worker forked under an old ``REPRO_BACKEND`` would
    otherwise keep computing with it after the parent changed its mind.
    """
    if backend is not None:
        os.environ[BACKEND_ENV_VAR] = backend
        # Only pool-dispatched executions (backend pinned by the parent) are
        # eligible to crash: the in-process degradation path must survive.
        _maybe_crash_for_test()
    start = perf_counter()
    if shard.kind == "stacked":
        from repro.experiments.stacked import run_cells_stacked

        pairs = run_cells_stacked(shard.cells)
    else:
        pairs = [(index, run_cell(cell)) for index, cell in shard.cells]
    return pairs, perf_counter() - start


# ---------------------------------------------------------------------- #
# persistent worker pool
# ---------------------------------------------------------------------- #
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0


def _shared_pool(workers: int) -> ProcessPoolExecutor:
    """The shared executor, (re)built only when the size changes.

    Keeping the pool alive across :func:`run_batch` calls is what makes a
    sweep *service* cheap: repeated and overlapping sweeps reuse warm
    worker processes instead of paying interpreter + import start-up per
    batch.
    """
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS != workers:
        _POOL.shutdown(wait=True)
        _POOL = None
    if _POOL is None:
        _POOL = ProcessPoolExecutor(max_workers=workers)
        _POOL_WORKERS = workers
    return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (idempotent; re-created on use)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_WORKERS = 0


def _abandon_pool() -> None:
    """Discard a possibly-wedged pool without waiting on its workers.

    ``shutdown(wait=True)`` would block on exactly the stuck worker that
    triggered the inactivity timeout; cancel what can be cancelled and let
    the executor's reaper collect the processes in the background.
    """
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_pool)


#: Pool rebuilds allowed per dispatch before degrading to in-process
#: execution: a repeatedly crashing pool is not going to start working.
MAX_POOL_REBUILDS = 2

#: A shard is resubmitted at most this many times after a pool crash; a
#: shard lost more often runs in-process instead (isolating a poison cell
#: in the parent, where its failure is at least attributable).
MAX_SHARD_ATTEMPTS = 2


def _dispatch_shards(
    shards: Sequence[Shard],
    workers: int,
    land: Callable[[int, CellResult], None],
    *,
    batch_start: Optional[float] = None,
    records: Optional[List[ShardRecord]] = None,
    incidents: Optional[List[PoolIncident]] = None,
    shard_timeout: Optional[float] = None,
) -> int:
    """Run shards across the persistent pool, landing cells as shards finish.

    Completion-order delivery: ``wait(FIRST_COMPLETED)`` over shard
    futures, so the progress hook never stalls behind the slowest early
    shard the way ``pool.map``'s submission-order iteration did.

    Dispatch is fault tolerant: a broken pool (a worker process died and
    poisoned the executor) is rebuilt and the lost shards resubmitted —
    multi-cell shards split in half on their first loss, so a poison cell
    ends up isolated in ever-smaller shards — with bounded retries
    (:data:`MAX_SHARD_ATTEMPTS` per shard, :data:`MAX_POOL_REBUILDS`
    rebuilds) before the remaining work degrades to in-process serial
    execution.  ``shard_timeout`` is an *inactivity* budget in seconds: if
    no shard completes for that long the pool is abandoned and the
    outstanding shards run in-process.  Because cells are deterministic
    pure functions, retried and degraded work lands byte-identical results;
    every intervention is appended to ``incidents``.

    Appends one :class:`ShardRecord` per shard to ``records`` (worker-side
    seconds plus the parent-side landing offset from ``batch_start``) and
    returns the effective pool size.
    """

    def landed_record(kind: str, pairs, seconds: float) -> None:
        for index, result in pairs:
            land(index, result)
        if records is not None:
            records.append(
                ShardRecord(
                    kind=kind,
                    cells=len(pairs),
                    seconds=seconds,
                    landed_seconds=(
                        perf_counter() - batch_start
                        if batch_start is not None
                        else 0.0
                    ),
                )
            )

    def run_inline(items: Sequence[Tuple[Shard, int]]) -> None:
        for shard, _attempt in items:
            pairs, seconds = _execute_shard(shard)
            landed_record(shard.kind, pairs, seconds)

    def note(kind: str, count: int, action: str) -> None:
        if incidents is not None:
            incidents.append(PoolIncident(kind=kind, shards=count, action=action))

    # Cap the pool at the work available: a 2-cell spec with workers=8
    # should not spawn 8 processes.
    workers = min(workers, len(shards))
    backend = resolve_backend()
    rebuilds = 0
    pool = _shared_pool(workers)
    pending: Dict[Future, Tuple[Shard, int]] = {
        pool.submit(_execute_shard, shard, backend): (shard, 0) for shard in shards
    }
    try:
        while pending:
            done, _ = wait(
                pending, timeout=shard_timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                # Inactivity: nothing completed within the budget.  The
                # pool may be wedged (a worker stuck in native code never
                # breaks the executor) — abandon it and finish in-process.
                outstanding = list(pending.values())
                pending.clear()
                note("timeout", len(outstanding), "serial")
                _abandon_pool()
                run_inline(outstanding)
                break
            lost: List[Tuple[Shard, int]] = []
            for future in done:
                shard, attempt = pending.pop(future)
                try:
                    pairs, seconds = future.result()
                except BrokenProcessPool:
                    lost.append((shard, attempt))
                    continue
                landed_record(shard.kind, pairs, seconds)
            if not lost:
                continue
            # A dead worker breaks the whole executor: every still-pending
            # future is doomed too.  Collect all outstanding work, rebuild
            # the pool once, and resubmit — splitting multi-cell shards on
            # their first loss so a deterministic crasher gets isolated.
            lost.extend(pending.values())
            pending.clear()
            shutdown_pool()
            rebuilds += 1
            if rebuilds > MAX_POOL_REBUILDS:
                note("pool-broken", len(lost), "serial")
                run_inline(lost)
                break
            note("pool-broken", len(lost), "retried")
            pool = _shared_pool(workers)
            for shard, attempt in lost:
                if attempt >= MAX_SHARD_ATTEMPTS:
                    run_inline([(shard, attempt)])
                elif attempt == 0 and len(shard.cells) > 1:
                    for chunk in _split(shard.cells, 2):
                        half = Shard(kind=shard.kind, cells=chunk)
                        pending[pool.submit(_execute_shard, half, backend)] = (
                            half,
                            attempt + 1,
                        )
                else:
                    pending[pool.submit(_execute_shard, shard, backend)] = (
                        shard,
                        attempt + 1,
                    )
    except BaseException:
        shutdown_pool()
        raise
    return workers


def _run_serial_engine(
    pending: Sequence[Tuple[int, ExperimentCell]],
    workers: int,
    land: Callable[[int, CellResult], None],
    *,
    batch_start: Optional[float] = None,
    records: Optional[List[ShardRecord]] = None,
    incidents: Optional[List[PoolIncident]] = None,
    shard_timeout: Optional[float] = None,
) -> int:
    """The ``engine="serial"`` path: per-cell execution, optionally fanned
    out as explicitly chunked serial shards (no stacking)."""
    if workers <= 1:
        start = perf_counter()
        for index, cell in pending:
            land(index, run_cell(cell))
        if records is not None:
            records.append(
                ShardRecord(
                    kind="serial",
                    cells=len(pending),
                    seconds=perf_counter() - start,
                    landed_seconds=(
                        perf_counter() - batch_start if batch_start is not None else 0.0
                    ),
                )
            )
        return 1
    # Explicit chunk size: amortize per-dispatch pickling without letting
    # one slow cell hold a whole worker's share hostage.
    chunksize = max(1, ceil(len(pending) / (workers * SERIAL_CHUNKS_PER_WORKER)))
    shards = [
        Shard(kind="serial", cells=tuple(pending[start:start + chunksize]))
        for start in range(0, len(pending), chunksize)
    ]
    return _dispatch_shards(
        shards,
        workers,
        land,
        batch_start=batch_start,
        records=records,
        incidents=incidents,
        shard_timeout=shard_timeout,
    )


#: Historic meaning of extra positional ``run_batch`` arguments, for the
#: deprecation shim below.
_RUN_BATCH_LEGACY_POSITIONALS = ("workers", "engine")


def run_batch(
    spec: Union[ExperimentSpec, dict],
    *legacy: object,
    workers: int = 1,
    engine: str = "auto",
    cache: Optional[ResultCache] = None,
    on_cell_done: Optional[Callable[[CellResult], None]] = None,
    shard_timeout: Optional[float] = None,
) -> BatchResult:
    """Run every cell of ``spec`` and collect the results in grid order.

    ``spec`` is an :class:`ExperimentSpec` or a ``repro.spec/v1`` payload
    dict (parsed through :meth:`ExperimentSpec.from_dict` — the same
    contract the CLI and the HTTP service speak).  Everything after it is
    keyword-only; the old positional ``(workers, engine)`` form still
    works for one release with a :class:`DeprecationWarning`.

    ``engine`` selects the execution strategy (see module docstring):
    ``"auto"`` shards stacked groups and serial chunks across ``workers``
    processes, ``"serial"`` runs cell-at-a-time (chunked across workers),
    ``"stacked"`` forces the lockstep probe-table engine — with
    ``workers > 1`` stacked shards are dispatched across the pool, so the
    historic single-process restriction is gone.  Because each cell
    reseeds from its own deterministic ``cell_seed``, the outcome —
    including the canonical JSON export — is identical for every engine
    and worker count.

    ``cache`` (a :class:`~repro.experiments.cache.ResultCache`) serves
    fingerprint hits without running anything and persists each miss as it
    lands.  ``on_cell_done`` is invoked with every finished result in
    completion order (cache hits first).

    Pool dispatch is fault tolerant (see :func:`_dispatch_shards`): crashed
    workers trigger a pool rebuild and shard resubmission, and
    ``shard_timeout`` seconds of pool inactivity degrade the remaining work
    to in-process execution — either way the batch completes with results
    byte-identical to an undisturbed run, and every intervention is
    recorded in ``result.telemetry.incidents``.

    The returned batch carries a
    :class:`~repro.obs.telemetry.SweepTelemetry` (per-shard wall times,
    worker utilization, cache hit counts) on ``result.telemetry`` —
    observational only, excluded from the canonical JSON export.

    An exception raised *inside* ``on_cell_done`` never abandons the sweep
    or wedges the persistent pool: it is suppressed, counted, and surfaces
    as a ``callback-error`` incident in the telemetry.  The one exception
    to that rule is :class:`BatchCancelled`, the sanctioned cooperative
    abort, which propagates at the cell boundary that raised it.
    """
    if legacy:
        warnings.warn(
            "positional run_batch arguments beyond the spec are deprecated: "
            "pass workers=/engine= as keywords",
            DeprecationWarning,
            stacklevel=2,
        )
        if len(legacy) > len(_RUN_BATCH_LEGACY_POSITIONALS):
            raise TypeError(
                f"run_batch takes at most {1 + len(_RUN_BATCH_LEGACY_POSITIONALS)} "
                "positional arguments"
            )
        positional = dict(zip(_RUN_BATCH_LEGACY_POSITIONALS, legacy))
        workers = positional.get("workers", workers)  # type: ignore[assignment]
        engine = positional.get("engine", engine)  # type: ignore[assignment]
    if isinstance(spec, dict):
        spec = ExperimentSpec.from_dict(spec)
    if engine not in ENGINES:
        raise ValueError(f"unknown batch engine {engine!r} (choose from {ENGINES})")
    batch_start = perf_counter()
    cells = spec.cells()
    results: List[Optional[CellResult]] = [None] * len(cells)
    shard_records: List[ShardRecord] = []
    pool_incidents: List[PoolIncident] = []
    effective_workers = 1
    callback_errors = 0

    def land(index: int, result: CellResult, *, fresh: bool = True) -> None:
        nonlocal callback_errors
        if fresh and cache is not None:
            cache.put(result.cell, result.metrics)
        results[index] = result
        if on_cell_done is not None:
            try:
                on_cell_done(result)
            except BatchCancelled:
                raise
            except Exception:
                # The cell itself landed fine; only the progress hook is
                # broken.  Keep landing cells and account for the failure
                # in the telemetry instead of tearing the batch down.
                callback_errors += 1

    pending: List[Tuple[int, ExperimentCell]] = []
    for index, cell in enumerate(cells):
        if cache is not None:
            metrics = cache.get(cell)
            if metrics is not None:
                land(index, CellResult(cell=cell, metrics=metrics), fresh=False)
                continue
        pending.append((index, cell))
    if cache is not None and len(pending) < len(cells):
        # Cache hits land as one zero-compute shard so the shard table
        # accounts for every cell of the batch.
        shard_records.append(
            ShardRecord(
                kind="cached",
                cells=len(cells) - len(pending),
                seconds=0.0,
                landed_seconds=perf_counter() - batch_start,
            )
        )

    if pending:
        if engine == "serial":
            effective_workers = _run_serial_engine(
                pending,
                workers,
                land,
                batch_start=batch_start,
                records=shard_records,
                incidents=pool_incidents,
                shard_timeout=shard_timeout,
            )
        elif workers <= 1:
            # auto/stacked, single process: stack eligible cells in-process
            # (one lockstep group per shape), everything else serially.
            from repro.experiments.stacked import run_cells_stacked

            start = perf_counter()
            run_cells_stacked(pending, on_result=land)
            shard_records.append(
                ShardRecord(
                    kind="stacked",
                    cells=len(pending),
                    seconds=perf_counter() - start,
                    landed_seconds=perf_counter() - batch_start,
                )
            )
        else:
            shards = plan_shards(pending, workers=workers)
            effective_workers = _dispatch_shards(
                shards,
                workers,
                land,
                batch_start=batch_start,
                records=shard_records,
                incidents=pool_incidents,
                shard_timeout=shard_timeout,
            )

    if callback_errors:
        pool_incidents.append(
            PoolIncident(
                kind="callback-error", shards=callback_errors, action="suppressed"
            )
        )
    telemetry = SweepTelemetry(
        engine=engine,
        workers=max(1, effective_workers),
        cells=len(cells),
        wall_seconds=perf_counter() - batch_start,
        shards=tuple(shard_records),
        cache=cache.stats.to_dict() if cache is not None else None,
        incidents=tuple(pool_incidents),
    )
    return BatchResult.assemble(spec, results, telemetry=telemetry)
