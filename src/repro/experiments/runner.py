"""Execution of experiment grids, serially or across processes.

:func:`run_cell` turns one :class:`~repro.experiments.spec.ExperimentCell`
into a :class:`~repro.experiments.results.CellResult`; :func:`run_batch`
fans a whole grid out over a :class:`concurrent.futures.ProcessPoolExecutor`
(``workers > 1``) or runs it inline (``workers <= 1``).

Every cell is self-contained and rebuilds its scenario from primitive cell
parameters plus the deterministic ``cell_seed``, so cells are cheap to
pickle, workers need no shared state, and a batch produces **identical
results for any worker count** — the JSON export of a serial run and a
4-worker run are byte-for-byte equal.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.metrics import summarize_routes
from repro.core.block_construction import build_blocks
from repro.experiments.results import BatchResult, CellResult
from repro.experiments.spec import ExperimentCell, ExperimentSpec
from repro.faults.injection import clustered_faults, dynamic_schedule, uniform_random_faults
from repro.mesh.topology import Mesh
from repro.routing import resolve_router
from repro.simulator.engine import SimulationConfig, Simulator
from repro.workloads.congestion import (
    bursty_scenario,
    hotspot_scenario,
    transpose_scenario,
)
from repro.workloads.traffic import random_pairs, to_traffic

Coord = Tuple[int, ...]


def _offline_faults(
    mesh: Mesh, count: int, rng: np.random.Generator
) -> List[Coord]:
    """Half the faults clustered at the mesh centre, half spread uniformly.

    Clustered faults coalesce into a sizable block (the interesting case for
    the faulty-block model); the uniform remainder exercises scattered
    single-node blocks.  Seeding the cluster at the centre keeps large
    clusters inside the interior for every seed.
    """
    centre = tuple(s // 2 for s in mesh.shape)
    faults = clustered_faults(mesh, count // 2, rng, spread=3, seed_node=centre)
    faults += uniform_random_faults(mesh, count - len(faults), rng, exclude=faults)
    return faults


def _run_offline_cell(cell: ExperimentCell) -> Dict[str, float]:
    mesh = Mesh(cell.shape)
    rng = np.random.default_rng(cell.cell_seed)
    faults = _offline_faults(mesh, cell.faults, rng)
    labeling = build_blocks(mesh, faults).state
    pairs = random_pairs(
        mesh,
        cell.messages,
        rng,
        min_distance=max(2, mesh.diameter // 2),
        exclude=list(labeling.block_nodes),
    )

    # The router derives whatever information view its policy assumes; its
    # one-slot cache makes the whole batch share a single derivation.
    router = resolve_router(cell.policy)
    routes = [router.route(mesh, labeling, s, d) for s, d in pairs]

    summary = summarize_routes(routes)
    return {
        "routes": float(summary.routes),
        "delivered": float(summary.delivered),
        "delivery_rate": summary.delivery_rate,
        "mean_hops": summary.mean_hops,
        "mean_detours": summary.mean_detours,
        "max_detours": float(summary.max_detours),
        "mean_backtracks": summary.mean_backtracks,
    }


def _simulate_scenario(cell: ExperimentCell):
    """Mesh/schedule/traffic for one simulate-mode cell's traffic family.

    Every family derives from ``cell.cell_seed`` alone, so all policies at
    one configuration point replay the identical scenario.
    """
    if cell.scenario == "hotspot":
        scenario = hotspot_scenario(
            shape=cell.shape,
            messages=cell.messages,
            dynamic_faults=cell.faults,
            interval=cell.interval,
            flits=cell.flits,
            seed=cell.cell_seed,
        )
        return scenario.mesh, scenario.schedule, list(scenario.traffic)
    if cell.scenario == "transpose":
        scenario = transpose_scenario(
            radix=cell.shape[0],
            n_dims=len(cell.shape),
            limit=cell.messages,
            dynamic_faults=cell.faults,
            interval=cell.interval,
            flits=cell.flits,
            seed=cell.cell_seed,
        )
        return scenario.mesh, scenario.schedule, list(scenario.traffic)
    if cell.scenario == "bursty":
        scenario = bursty_scenario(
            shape=cell.shape,
            bursts=max(1, cell.messages // 6),
            burst_size=min(6, cell.messages),
            dynamic_faults=cell.faults,
            interval=cell.interval,
            flits=cell.flits,
            seed=cell.cell_seed,
        )
        return scenario.mesh, scenario.schedule, list(scenario.traffic)
    # "random": the historic sweep construction (cell seeds now also hash
    # the scenario/flits axes, so derived values differ from old exports).
    mesh = Mesh(cell.shape)
    rng = np.random.default_rng(cell.cell_seed)
    fault_nodes = uniform_random_faults(mesh, cell.faults, rng, margin=1)
    schedule = dynamic_schedule(fault_nodes, start_time=2, interval=cell.interval)
    pairs = random_pairs(
        mesh,
        cell.messages,
        rng,
        min_distance=max(1, mesh.diameter // 2),
        exclude=fault_nodes,
    )
    traffic = to_traffic(pairs, start_time=0, spacing=1, tag="sweep", flits=cell.flits)
    return mesh, schedule, traffic


def _build_simulate_sim(cell: ExperimentCell) -> Simulator:
    """The simulator of one simulate-mode cell (shared with the stacked
    runner, so both engines construct byte-identical scenarios)."""
    mesh, schedule, traffic = _simulate_scenario(cell)
    return Simulator(
        mesh,
        schedule=schedule,
        traffic=traffic,
        config=SimulationConfig(
            lam=cell.lam, router=cell.policy, contention=cell.contention
        ),
    )


def _simulate_metrics(cell: ExperimentCell, result) -> Dict[str, float]:
    """Metrics row of one finished simulate-mode run."""
    stats = result.stats
    worst = max(
        (c.steps_to_stabilize(cell.lam) for c in stats.convergence), default=0
    )
    metrics = dict(stats.summary())
    metrics["worst_steps_to_stabilize"] = float(worst)
    metrics["information_cells"] = float(result.information.information_cells())
    return metrics


def _run_simulate_cell(cell: ExperimentCell) -> Dict[str, float]:
    return _simulate_metrics(cell, _build_simulate_sim(cell).run())


def _run_throughput_cell(cell: ExperimentCell) -> Dict[str, float]:
    # Imported lazily: repro.throughput builds on the simulator and the
    # workloads, and its saturation module calls back into run_batch.
    from repro.throughput.measure import MeasurementWindows, run_throughput_point

    result = run_throughput_point(
        cell.shape,
        cell.policy,
        cell.scenario,
        cell.rate,
        faults=cell.faults,
        lam=cell.lam,
        flits=cell.flits,
        seed=cell.cell_seed,
        injection=cell.injection,
        windows=MeasurementWindows(
            warmup=cell.warmup, measure=cell.measure, drain=cell.drain
        ),
    )
    return result.to_row()


def run_cell(cell: ExperimentCell) -> CellResult:
    """Execute one cell and return its metrics (pure function of the cell)."""
    if cell.mode == "offline":
        metrics = _run_offline_cell(cell)
    elif cell.mode == "simulate":
        metrics = _run_simulate_cell(cell)
    elif cell.mode == "throughput":
        metrics = _run_throughput_cell(cell)
    else:
        raise ValueError(f"unknown experiment mode {cell.mode!r}")
    return CellResult(cell=cell, metrics=metrics)


def run_batch(
    spec: ExperimentSpec,
    *,
    workers: int = 1,
    engine: str = "serial",
    on_cell_done: Optional[Callable[[CellResult], None]] = None,
) -> BatchResult:
    """Run every cell of ``spec`` and collect the results in grid order.

    ``workers > 1`` distributes cells over that many processes; because each
    cell reseeds from its own deterministic ``cell_seed``, the outcome —
    including the canonical JSON export — is identical for every worker
    count.  ``engine="stacked"`` instead steps all probe-table-eligible
    simulate-mode cells of one mesh shape together on a shared
    :class:`~repro.core.probe_table.ProbeTable` (single-process; results
    stay byte-identical to the serial runner).  ``on_cell_done``
    (serial-friendly progress hook) is invoked with each finished result,
    in completion order.
    """
    if engine == "stacked":
        if workers > 1:
            raise ValueError("engine='stacked' is single-process (workers=1)")
        from repro.experiments.stacked import run_batch_stacked

        return run_batch_stacked(spec, on_cell_done=on_cell_done)
    if engine != "serial":
        raise ValueError(f"unknown batch engine {engine!r}")
    cells = spec.cells()
    results: List[CellResult] = []
    if workers <= 1:
        for cell in cells:
            result = run_cell(cell)
            if on_cell_done is not None:
                on_cell_done(result)
            results.append(result)
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for result in pool.map(run_cell, cells):
                if on_cell_done is not None:
                    on_cell_done(result)
                results.append(result)
    return BatchResult(spec=spec, results=tuple(results))
