"""Content-addressed on-disk cache for experiment-cell results.

A sweep service sees the same cells over and over: overlapping grids, a
re-run after an interrupt, the same load curve requested by two users.
Every cell is a pure function of its parameters and its deterministic
``cell_seed``, so its result can be addressed by *content*: a stable
SHA-256 fingerprint over the cell's identity (every parameter that can
change the outcome, including the seed), the hot-loop backend and the
package version.  Anything that could alter a metric changes the
fingerprint; the grid *position* (``cell.index``) deliberately does not,
so overlapping sweeps with different grid layouts share entries.

Entries are one JSON file each, written atomically (temp file +
:func:`os.replace`) as the cell's result lands — an interrupted sweep
leaves only whole entries behind and resumes from them.  A corrupted or
truncated entry is treated as a miss and recomputed, never trusted and
never fatal.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from repro import __version__ as PACKAGE_VERSION
from repro.backend import resolve_backend
from repro.experiments.spec import ExperimentCell

#: Bump when the on-disk entry layout or the metric semantics change in a
#: way the fingerprint's other components would not capture.
#: v2: cell identity covers the dynamic fault workload (``fault_rate`` /
#: ``repair_after``) and throughput rows may carry fault/SLO columns.
CACHE_FORMAT = 2

#: Environment variable naming the default cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro-mesh``."""
    value = os.environ.get(ENV_CACHE_DIR)
    if value:
        return Path(value).expanduser()
    return Path("~/.cache/repro-mesh").expanduser()


def cell_fingerprint(
    cell: ExperimentCell,
    *,
    backend: Optional[str] = None,
    version: Optional[str] = None,
) -> str:
    """Stable content address of one cell's result.

    Hashes the cell identity (:meth:`ExperimentCell.identity` — every
    result-determining parameter plus the ``cell_seed``, grid position
    excluded), the resolved backend and the package version, so a backend
    switch or a release invalidates every entry instead of silently
    serving stale numbers.
    """
    payload = {
        "format": CACHE_FORMAT,
        "backend": resolve_backend(backend),
        "version": version if version is not None else PACKAGE_VERSION,
        "cell": cell.identity(),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Entries that existed but were unreadable/corrupt (counted *also* as
    #: misses — the cell is recomputed and the entry rewritten).
    invalid: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, int]:
        """Flat payload for sweep telemetry (lookups/hit_rate derivable)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "invalid": self.invalid,
        }


@dataclass
class ResultCache:
    """Content-addressed result store under one directory.

    ``backend``/``version`` default to the live backend and package
    version; tests override them to prove fingerprint invalidation.
    Instances are used from the *parent* process only — workers return
    results and the parent persists them — so no cross-process locking is
    needed beyond the atomic per-entry replace.
    """

    root: Union[str, Path] = field(default_factory=default_cache_dir)
    backend: Optional[str] = None
    version: Optional[str] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.backend = resolve_backend(self.backend)
        if self.version is None:
            self.version = PACKAGE_VERSION

    # ------------------------------------------------------------------ #
    # addressing
    # ------------------------------------------------------------------ #
    def fingerprint(self, cell: ExperimentCell) -> str:
        return cell_fingerprint(cell, backend=self.backend, version=self.version)

    def path_for(self, cell: ExperimentCell) -> Path:
        """Entry path: two-level fan-out keeps directories small."""
        fp = self.fingerprint(cell)
        return Path(self.root) / fp[:2] / f"{fp}.json"

    # ------------------------------------------------------------------ #
    # lookup / store
    # ------------------------------------------------------------------ #
    def get(self, cell: ExperimentCell) -> Optional[Dict[str, float]]:
        """The cached metrics of ``cell``, or ``None`` on a miss.

        A present-but-broken entry (truncated write from a killed process,
        disk corruption, by-hand edits) is *never* trusted and *never*
        fatal: it counts as ``invalid`` and as a miss, and the caller
        recomputes the cell, overwriting the entry.
        """
        path = self.path_for(cell)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError, ValueError):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        metrics = payload.get("metrics") if isinstance(payload, dict) else None
        if (
            not isinstance(metrics, dict)
            or payload.get("fingerprint") != path.stem
            or not all(isinstance(k, str) for k in metrics)
            or not all(isinstance(v, (int, float)) for v in metrics.values())
        ):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return metrics

    def put(self, cell: ExperimentCell, metrics: Dict[str, float]) -> Path:
        """Persist one cell's metrics atomically; returns the entry path.

        The temp file lives next to the final path so :func:`os.replace`
        stays a same-filesystem atomic rename; a crash mid-write leaves
        only the temp file (ignored by lookups) behind.
        """
        path = self.path_for(cell)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": CACHE_FORMAT,
            "fingerprint": path.stem,
            "backend": self.backend,
            "version": self.version,
            "cell": cell.identity(),
            "metrics": {k: metrics[k] for k in sorted(metrics)},
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, path)
        self.stats.writes += 1
        return path
