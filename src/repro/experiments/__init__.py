"""Experiment orchestration: declarative grids, sharded runs, caching.

The subsystem sits above the per-probe algorithms and the simulator, so
whole fleets of scenarios can be swept, compared and persisted uniformly:

* :mod:`repro.experiments.spec` — :class:`ExperimentSpec`, a declarative
  grid over mesh shapes, fault counts/intervals, λ, routing policies,
  traffic sizes and seeds, expanded into deterministic
  :class:`ExperimentCell` items;
* :mod:`repro.experiments.runner` — :func:`run_batch`, executing the grid
  through the serial, stacked or auto-sharded engine, fanning shards out
  across a persistent process pool with per-cell deterministic seeding
  (every engine and worker count produces identical results);
* :mod:`repro.experiments.shard` — the planner partitioning cells by
  (shape, probe-table eligibility, mode) into dispatchable
  :class:`Shard` units;
* :mod:`repro.experiments.cache` — :class:`ResultCache`, the
  content-addressed on-disk result store that makes repeated and
  overlapping sweeps cost only cache reads;
* :mod:`repro.experiments.results` — :class:`BatchResult`, aggregating
  per-cell metrics with canonical JSON export and pivot-table helpers.
  Each batch also carries a :class:`~repro.obs.telemetry.SweepTelemetry`
  (shard timings, worker utilization, cache stats) on
  ``BatchResult.telemetry`` — observational only, never part of the
  canonical JSON.

The ``repro-mesh sweep`` CLI subcommand, the HTTP service
(:mod:`repro.service`), the comparison benchmarks and
``examples/policy_comparison.py`` all route through this package.

**Stable public surface.** ``__all__`` below *is* the supported API of
this package: specs are built with keyword arguments or parsed from the
versioned ``repro.spec/v1`` payload via :meth:`ExperimentSpec.from_dict`,
batches run through :func:`run_batch` (keyword options only), and results
export as the ``repro.result/v1`` payload via
:meth:`BatchResult.to_dict`/``to_json``.  Historic call forms — positional
``ExperimentSpec(...)`` arguments, positional ``run_batch`` options,
schema-less spec payloads and ``run_batch_stacked`` — keep working for one
release with a :class:`DeprecationWarning`.
"""

from repro.experiments.cache import CacheStats, ResultCache, cell_fingerprint
from repro.experiments.results import RESULT_SCHEMA, BatchResult, CellResult
from repro.experiments.runner import (
    ENGINES,
    BatchCancelled,
    run_batch,
    run_cell,
    shutdown_pool,
)
from repro.obs.telemetry import ShardRecord, SweepTelemetry
from repro.experiments.shard import Shard, plan_shards, probe_table_eligible
from repro.experiments.spec import (
    MODES,
    OFFLINE_POLICIES,
    SIMULATE_POLICIES,
    SPEC_SCHEMA,
    ExperimentCell,
    ExperimentSpec,
    derive_cell_seed,
)

__all__ = [
    "BatchCancelled",
    "BatchResult",
    "CacheStats",
    "CellResult",
    "ENGINES",
    "ExperimentCell",
    "ExperimentSpec",
    "MODES",
    "OFFLINE_POLICIES",
    "RESULT_SCHEMA",
    "ResultCache",
    "SIMULATE_POLICIES",
    "SPEC_SCHEMA",
    "Shard",
    "ShardRecord",
    "SweepTelemetry",
    "cell_fingerprint",
    "derive_cell_seed",
    "plan_shards",
    "probe_table_eligible",
    "run_batch",
    "run_cell",
    "shutdown_pool",
]
