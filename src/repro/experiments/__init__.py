"""Experiment orchestration: declarative grids, parallel runs, aggregation.

The subsystem sits above the per-probe algorithms and the simulator, so
whole fleets of scenarios can be swept, compared and persisted uniformly:

* :mod:`repro.experiments.spec` — :class:`ExperimentSpec`, a declarative
  grid over mesh shapes, fault counts/intervals, λ, routing policies,
  traffic sizes and seeds, expanded into deterministic
  :class:`ExperimentCell` items;
* :mod:`repro.experiments.runner` — :func:`run_batch`, fanning the grid out
  across processes with per-cell deterministic seeding (serial and parallel
  runs produce identical results);
* :mod:`repro.experiments.results` — :class:`BatchResult`, aggregating
  per-cell metrics with canonical JSON export and pivot-table helpers.

The ``repro-mesh sweep`` CLI subcommand, the comparison benchmarks and
``examples/policy_comparison.py`` all route through this package.
"""

from repro.experiments.results import BatchResult, CellResult
from repro.experiments.runner import run_batch, run_cell
from repro.experiments.spec import (
    MODES,
    OFFLINE_POLICIES,
    SIMULATE_POLICIES,
    ExperimentCell,
    ExperimentSpec,
    derive_cell_seed,
)

__all__ = [
    "BatchResult",
    "CellResult",
    "ExperimentCell",
    "ExperimentSpec",
    "MODES",
    "OFFLINE_POLICIES",
    "SIMULATE_POLICIES",
    "derive_cell_seed",
    "run_batch",
    "run_cell",
]
