"""Shard planning: partition a sweep's cells into dispatchable units.

The two fast paths of the runner used to be mutually exclusive: the
stacked probe-table engine (all same-shape eligible cells stepped in
lockstep, ~3x on contended sweeps) was pinned to a single process, while
``workers > 1`` pickled cells one at a time through ``pool.map``.  The
planner here makes them compose.  It partitions a grid's cells by
(mesh shape, probe-table eligibility, mode) into :class:`Shard` units:

* **stacked shards** — probe-table-eligible simulate cells of one shape,
  run as one lockstep group on a shared
  :class:`~repro.core.probe_table.ProbeTable`.  A large group is *split*
  into up to ``workers`` sub-shards so a contended 96-cell same-shape
  sweep saturates the whole pool; stacking is a pure per-row
  amortization, so membership never changes any cell's result.
* **serial shards** — everything else (offline/throughput cells,
  ineligible policies, scalar backend), chunked with an explicit chunk
  size so per-cell dispatch overhead is amortized and tiny specs don't
  fan out one pickle per cell.

Eligibility here is a *prediction* used only for grouping: the stacked
executor re-checks per simulator (``sim._table is None``) and falls back
cell by cell, so a mismatch costs locality, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backend import VECTOR, resolve_backend
from repro.experiments.spec import ExperimentCell
from repro.routing import AlgorithmRouter, resolve_router

#: One (grid index, cell) work item.
IndexedCell = Tuple[int, ExperimentCell]

#: Don't split a stacked group below this many cells per sub-shard: the
#: stacking win comes from amortizing the per-step vectorized pass over
#: many cells, so two 2-cell shards are slower than one 4-cell shard.
MIN_STACKED_SHARD = 4

#: Serial cells are chunked into about this many shards per worker, which
#: balances load (a slow cell only stalls its own chunk) against per-chunk
#: pickling overhead.
SERIAL_CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class Shard:
    """One dispatchable unit of sweep work.

    ``kind`` is ``"stacked"`` (same-shape probe-table lockstep group) or
    ``"serial"`` (cells run one at a time).  Shards are picklable and
    self-contained, so they travel to pool workers as-is.
    """

    kind: str
    cells: Tuple[IndexedCell, ...]

    def __len__(self) -> int:
        return len(self.cells)


def probe_table_eligible(cell: ExperimentCell, *, backend: Optional[str] = None) -> bool:
    """Predict whether ``cell``'s simulator will engage the probe table.

    Mirrors the gate in :class:`~repro.simulator.engine.Simulator`: a
    simulate-mode cell, an Algorithm-3 router (the registry's
    ``AlgorithmRouter`` policies), the vector backend (decision engine +
    array ledger), and a direction bitmask that fits 32 bits.
    """
    if cell.mode != "simulate":
        return False
    if resolve_backend(backend) != VECTOR:
        return False
    if 2 * len(cell.shape) > 32:
        return False
    return type(resolve_router(cell.policy)) is AlgorithmRouter


def _split(items: Sequence[IndexedCell], n_shards: int) -> List[Tuple[IndexedCell, ...]]:
    """Split ``items`` into ``n_shards`` contiguous, near-equal runs."""
    n_shards = max(1, min(n_shards, len(items)))
    base, extra = divmod(len(items), n_shards)
    out: List[Tuple[IndexedCell, ...]] = []
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        out.append(tuple(items[start:start + size]))
        start += size
    return out


def plan_shards(
    cells: Sequence[IndexedCell],
    *,
    workers: int = 1,
    backend: Optional[str] = None,
) -> List[Shard]:
    """Partition ``cells`` into stacked and serial shards for ``workers``.

    Deterministic: grouping follows grid order, so the same grid always
    plans the same shards.  Every input index appears in exactly one
    shard.
    """
    workers = max(1, workers)
    stacked_groups: Dict[Tuple[int, ...], List[IndexedCell]] = {}
    serial: List[IndexedCell] = []
    for index, cell in cells:
        if probe_table_eligible(cell, backend=backend):
            stacked_groups.setdefault(cell.shape, []).append((index, cell))
        else:
            serial.append((index, cell))

    shards: List[Shard] = []
    for group in stacked_groups.values():
        n = min(workers, max(1, len(group) // MIN_STACKED_SHARD))
        for chunk in _split(group, n):
            shards.append(Shard(kind="stacked", cells=chunk))
    if serial:
        if workers <= 1:
            shards.append(Shard(kind="serial", cells=tuple(serial)))
        else:
            # Explicit chunk size for the remaining per-cell dispatch.
            chunksize = max(1, ceil(len(serial) / (workers * SERIAL_CHUNKS_PER_WORKER)))
            for start in range(0, len(serial), chunksize):
                shards.append(
                    Shard(kind="serial", cells=tuple(serial[start:start + chunksize]))
                )
    return shards
