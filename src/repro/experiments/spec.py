"""Declarative experiment grids.

An :class:`ExperimentSpec` describes a whole family of experiments as the
cartesian product of its axes — mesh shapes, traffic scenarios, fault
counts, fault intervals, λ values, routing policies, traffic sizes, message
lengths (flits), open-loop injection rates and replicate seeds.  The spec
expands into a flat list of :class:`ExperimentCell` items that the runner
(:mod:`repro.experiments.runner`) executes serially or across processes.

Determinism is the core contract: every cell carries a *configuration seed*
derived with a stable hash from the spec name and the cell's configuration
axes.  The policy axis is deliberately **excluded** from the derivation, so
cells that differ only in policy share the exact same mesh, fault layout and
traffic — policy columns of a result table are directly comparable, and a
batch produces identical results no matter how many workers ran it.

The spec also *is* the wire format: :meth:`ExperimentSpec.to_dict` emits the
versioned ``repro.spec/v1`` payload and :meth:`ExperimentSpec.from_dict` is
the one canonical parser for it — the ``sweep`` CLI flags, ``--spec
FILE.json`` and the HTTP service body (:mod:`repro.service`) all build their
spec through it, so a grid means the same thing no matter which door it
came in through.
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import dataclass, fields as dataclass_fields
from itertools import product
from typing import Iterable, Iterator, List, Tuple, Union

from repro.routing import available_routers

#: Version tag of the spec wire/file payload.  Bump when the payload layout
#: changes incompatibly; :meth:`ExperimentSpec.from_dict` rejects payloads
#: declaring any other schema.
SPEC_SCHEMA = "repro.spec/v1"

#: Experiment modes: ``simulate`` runs the step-synchronous simulator with a
#: dynamic fault schedule; ``offline`` routes a batch of messages against a
#: fully stabilized information state; ``throughput`` runs the open-loop
#: windowed measurement of :mod:`repro.throughput` (circuit contention on).
MODES = ("simulate", "offline", "throughput")

#: Closed-batch traffic families sweepable in ``simulate`` mode.
SIMULATE_SCENARIOS = ("random", "hotspot", "transpose", "bursty")

#: Open-loop spatial patterns sweepable in ``throughput`` mode (must match
#: :data:`repro.throughput.injection.PATTERNS`).
THROUGHPUT_SCENARIOS = ("uniform", "transpose", "hotspot")

#: Open-loop injection processes (``throughput`` mode).
INJECTIONS = ("bernoulli", "bursty")

#: Valid scenario values per mode (offline routes plain random batches).
SCENARIOS_BY_MODE = {
    "simulate": SIMULATE_SCENARIOS,
    "offline": ("random",),
    "throughput": THROUGHPUT_SCENARIOS,
}


def _registered_policies() -> Tuple[str, ...]:
    return available_routers()


#: Every registered router is sweepable in *both* modes: each routes offline
#: against a stabilized labeling and steps online inside the simulator.
#: (The two names are kept for callers that still distinguish the modes.)
SIMULATE_POLICIES = _registered_policies()
OFFLINE_POLICIES = _registered_policies()


def derive_cell_seed(name: str, *parts: object) -> int:
    """A deterministic 63-bit seed from the spec name and configuration axes.

    Uses SHA-256 rather than :func:`hash` so the value is stable across
    processes and interpreter runs (``PYTHONHASHSEED`` does not leak in).
    """
    text = "|".join([name, *[repr(p) for p in parts]])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class ExperimentCell:
    """One fully resolved grid point of an :class:`ExperimentSpec`."""

    index: int
    mode: str
    shape: Tuple[int, ...]
    policy: str
    faults: int
    interval: int
    lam: int
    messages: int
    seed: int

    #: Seed actually used to build the cell's mesh/faults/traffic; shared by
    #: every policy at the same configuration point.
    cell_seed: int = 0

    #: Whether the simulator runs the PCS circuit phase (always True in
    #: throughput mode).
    contention: bool = False

    #: Data-phase length of every message (circuit hold under contention).
    flits: int = 64

    #: Traffic family (closed-batch scenario or open-loop spatial pattern).
    scenario: str = "random"

    #: Offered injection rate per node per step (throughput mode only).
    rate: float = 0.0

    #: Open-loop injection process and measurement windows (throughput mode
    #: only; carried on the cell so workers need no shared state).
    injection: str = "bernoulli"
    warmup: int = 64
    measure: int = 256
    drain: int = 512

    #: Dynamic MTBF fault workload inside the measurement window (throughput
    #: mode only): per-step fault probability, and how many steps later each
    #: fault is repaired (0 = permanent).
    fault_rate: float = 0.0
    repair_after: int = 0

    def identity(self) -> dict:
        """Every parameter that determines this cell's result, JSON-shaped.

        The grid position (``index``) is deliberately excluded: two sweeps
        laying out the same configuration at different grid offsets must
        produce the same content address in the result cache
        (:mod:`repro.experiments.cache`).  Everything else — including the
        policy, the ``cell_seed`` and the throughput-mode injection
        windows — is part of the identity.
        """
        return {
            "mode": self.mode,
            "shape": list(self.shape),
            "policy": self.policy,
            "faults": self.faults,
            "interval": self.interval,
            "lam": self.lam,
            "messages": self.messages,
            "seed": self.seed,
            "cell_seed": self.cell_seed,
            "contention": self.contention,
            "flits": self.flits,
            "scenario": self.scenario,
            "rate": self.rate,
            "injection": self.injection,
            "warmup": self.warmup,
            "measure": self.measure,
            "drain": self.drain,
            "fault_rate": self.fault_rate,
            "repair_after": self.repair_after,
        }

    def config_key(self) -> Tuple[object, ...]:
        """The configuration axes (everything except the policy).

        The ``rate`` and ``fault_rate`` are part of the key — cells at
        different rates are different configurations — but like the policy
        they are *excluded* from the cell-seed derivation, so every point of
        a load curve shares one static fault layout and random stream.
        """
        return (self.mode, self.shape, self.scenario, self.faults, self.interval,
                self.lam, self.messages, self.flits, self.rate, self.seed,
                self.fault_rate, self.repair_after)


def _int_axis(value: Union[int, Iterable[int]]) -> Tuple[int, ...]:
    if isinstance(value, int):
        return (value,)
    return tuple(int(v) for v in value)


def _float_axis(value: Union[float, Iterable[float]]) -> Tuple[float, ...]:
    if isinstance(value, (int, float)):
        return (float(value),)
    return tuple(float(v) for v in value)


# ---------------------------------------------------------------------- #
# payload parsing (repro.spec/v1)
# ---------------------------------------------------------------------- #
def _field_error(name: str, expected: str, value: object) -> ValueError:
    return ValueError(
        f"spec field {name!r}: expected {expected}, "
        f"got {value!r} ({type(value).__name__})"
    )


def _parse_str(name: str, value: object) -> str:
    if not isinstance(value, str):
        raise _field_error(name, "a string", value)
    return value


def _parse_int(name: str, value: object) -> int:
    # bool is an int subclass; a JSON true/false where a count belongs is
    # always a mistake worth naming.
    if isinstance(value, bool) or not isinstance(value, int):
        raise _field_error(name, "an integer", value)
    return value


def _parse_bool(name: str, value: object) -> bool:
    if not isinstance(value, bool):
        raise _field_error(name, "a boolean", value)
    return value


def _parse_int_list(name: str, value: object) -> Tuple[int, ...]:
    if isinstance(value, bool) or (
        not isinstance(value, (int, list, tuple))
    ):
        raise _field_error(name, "an integer or a list of integers", value)
    items = [value] if isinstance(value, int) else list(value)
    for item in items:
        if isinstance(item, bool) or not isinstance(item, int):
            raise _field_error(name, "a list of integers", value)
    return tuple(items)


def _parse_float_list(name: str, value: object) -> Tuple[float, ...]:
    if isinstance(value, bool) or not isinstance(value, (int, float, list, tuple)):
        raise _field_error(name, "a number or a list of numbers", value)
    items = [value] if isinstance(value, (int, float)) else list(value)
    for item in items:
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            raise _field_error(name, "a list of numbers", value)
    return tuple(float(item) for item in items)


def _parse_str_list(name: str, value: object) -> Tuple[str, ...]:
    if isinstance(value, str):
        return (value,)
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise _field_error(name, "a string or a list of strings", value)
    return tuple(value)


def _parse_shapes(name: str, value: object) -> Tuple[Tuple[int, ...], ...]:
    if not isinstance(value, (list, tuple)):
        raise _field_error(name, "a list of mesh shapes (lists of integers)", value)
    shapes = []
    for shape in value:
        if (
            not isinstance(shape, (list, tuple))
            or not shape
            or any(isinstance(r, bool) or not isinstance(r, int) for r in shape)
        ):
            raise _field_error(
                name, "a list of mesh shapes (non-empty lists of integers)", value
            )
        shapes.append(tuple(shape))
    return tuple(shapes)


#: The parseable payload fields, in :class:`ExperimentSpec` field order.
#: ``schema`` and ``cell_count`` are handled separately (version tag and
#: derived output, respectively).
_FIELD_PARSERS = {
    "name": _parse_str,
    "mode": _parse_str,
    "mesh_shapes": _parse_shapes,
    "policies": _parse_str_list,
    "fault_counts": _parse_int_list,
    "fault_intervals": _parse_int_list,
    "lams": _parse_int_list,
    "traffic_sizes": _parse_int_list,
    "seeds": _parse_int_list,
    "contention": _parse_bool,
    "flits": _parse_int_list,
    "scenarios": _parse_str_list,
    "rates": _parse_float_list,
    "injection": _parse_str,
    "warmup": _parse_int,
    "measure": _parse_int,
    "drain": _parse_int,
    "fault_rates": _parse_float_list,
    "repair_after": _parse_int,
}


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative grid of experiments.

    Every axis is a tuple; :meth:`cells` expands the cartesian product in a
    fixed order (shape, scenario, faults, interval, λ, messages, flits,
    rate, fault_rate, seed, policy — policy innermost so comparable cells
    sit next to each other).  ``flits`` and ``scenario`` are first-class
    axes; a scalar ``flits`` is accepted and normalized to a one-element
    axis.
    """

    name: str = "sweep"
    mode: str = "simulate"
    mesh_shapes: Tuple[Tuple[int, ...], ...] = ((8, 8),)
    policies: Tuple[str, ...] = ("limited-global",)
    fault_counts: Tuple[int, ...] = (4,)
    fault_intervals: Tuple[int, ...] = (10,)
    lams: Tuple[int, ...] = (2,)
    traffic_sizes: Tuple[int, ...] = (12,)
    seeds: Tuple[int, ...] = (0,)

    #: Run the simulator's PCS circuit phase: concurrent path setups contend
    #: for links and delivered circuits hold their links for a
    #: ``flits``-derived time (forced on in throughput mode).
    contention: bool = False

    #: Message length(s) in flits — a sweepable axis (scalar accepted).
    flits: Union[int, Tuple[int, ...]] = (64,)

    #: Traffic families — closed-batch scenarios in simulate mode
    #: (:data:`SIMULATE_SCENARIOS`), open-loop spatial patterns in
    #: throughput mode (:data:`THROUGHPUT_SCENARIOS`).
    scenarios: Tuple[str, ...] = ()

    #: Offered injection rates per node per step (throughput mode).
    rates: Union[float, Tuple[float, ...]] = (0.05,)

    #: Open-loop injection process (throughput mode).
    injection: str = "bernoulli"

    #: Measurement windows in steps (throughput mode).
    warmup: int = 64
    measure: int = 256
    drain: int = 512

    #: Dynamic MTBF fault-rate axis (throughput mode; 0.0 = static faults
    #: only) and the shared repair delay in steps (0 = permanent faults).
    fault_rates: Union[float, Tuple[float, ...]] = (0.0,)
    repair_after: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "mesh_shapes", tuple(tuple(int(r) for r in s) for s in self.mesh_shapes)
        )
        for attr in ("policies", "fault_counts", "fault_intervals", "lams",
                     "traffic_sizes", "seeds"):
            object.__setattr__(self, attr, tuple(getattr(self, attr)))
        object.__setattr__(self, "flits", _int_axis(self.flits))
        object.__setattr__(self, "rates", _float_axis(self.rates))
        object.__setattr__(self, "fault_rates", _float_axis(self.fault_rates))
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if not self.scenarios:
            default = "uniform" if self.mode == "throughput" else "random"
            object.__setattr__(self, "scenarios", (default,))
        else:
            object.__setattr__(self, "scenarios", tuple(self.scenarios))
        if self.mode == "throughput":
            # Open-loop saturation is only meaningful with the circuit
            # phase: without link contention nothing ever saturates.
            object.__setattr__(self, "contention", True)
        registered = available_routers()
        for policy in self.policies:
            if policy not in registered:
                raise ValueError(
                    f"policy {policy!r} is not a registered router "
                    f"(choose from {registered})"
                )
        valid_scenarios = SCENARIOS_BY_MODE[self.mode]
        for scenario in self.scenarios:
            if scenario not in valid_scenarios:
                raise ValueError(
                    f"scenario {scenario!r} is not valid in {self.mode} mode "
                    f"(choose from {valid_scenarios})"
                )
        if "transpose" in self.scenarios:
            for shape in self.mesh_shapes:
                if len(set(shape)) != 1:
                    raise ValueError(
                        f"transpose traffic requires uniform (cubic) meshes, got {shape}"
                    )
        if self.contention and self.mode == "offline":
            raise ValueError("contention requires simulate mode (offline has no circuit phase)")
        for flits in self.flits:
            if flits < 0:
                raise ValueError("flits must be non-negative")
        for rate in self.rates:
            if not 0.0 < rate <= 1.0:
                raise ValueError("rates must be within (0, 1]")
        if self.injection not in INJECTIONS:
            raise ValueError(f"injection must be one of {INJECTIONS}")
        if self.warmup < 0 or self.measure < 1 or self.drain < 0:
            raise ValueError("warmup/drain must be >= 0 and measure >= 1")
        for axis in ("mesh_shapes", "policies", "scenarios", "fault_counts",
                     "fault_intervals", "lams", "traffic_sizes", "seeds",
                     "flits", "rates"):
            if not getattr(self, axis):
                raise ValueError(f"{axis} must be non-empty")
        for shape in self.mesh_shapes:
            if len(shape) < 1 or any(r < 2 for r in shape):
                raise ValueError(f"invalid mesh shape {shape}")
        if self.mode == "offline" and (len(self.fault_intervals) > 1 or len(self.lams) > 1):
            # Offline cells never read interval/λ; a multi-valued axis would
            # just rerun differently-seeded replicates disguised as distinct
            # configurations.
            raise ValueError(
                "offline mode ignores fault_intervals and lams; "
                "give each a single value"
            )
        if self.mode != "throughput" and len(self.rates) > 1:
            raise ValueError(
                "rates is a throughput-mode axis; give a single value otherwise"
            )
        for fault_rate in self.fault_rates:
            if not 0.0 <= fault_rate < 1.0:
                raise ValueError("fault_rates must be within [0, 1)")
        if self.repair_after < 0:
            raise ValueError("repair_after must be non-negative")
        if self.mode != "throughput" and (
            len(self.fault_rates) > 1 or self.fault_rates[0] > 0.0
        ):
            raise ValueError(
                "fault_rates is a throughput-mode axis; leave it at 0.0 otherwise"
            )
        if self.mode == "throughput" and (
            len(self.fault_intervals) > 1 or len(self.traffic_sizes) > 1
        ):
            # Open-loop cells use static pre-stabilized faults and generate
            # their own traffic from the rate axis.
            raise ValueError(
                "throughput mode ignores fault_intervals and traffic_sizes; "
                "give each a single value"
            )

    @property
    def cell_count(self) -> int:
        """Number of grid points the spec expands to."""
        return (
            len(self.mesh_shapes) * len(self.scenarios) * len(self.fault_counts)
            * len(self.fault_intervals) * len(self.lams) * len(self.traffic_sizes)
            * len(self.flits) * len(self.rates) * len(self.fault_rates)
            * len(self.seeds) * len(self.policies)
        )

    def cells(self) -> List[ExperimentCell]:
        """Expand the grid into its cells, in deterministic order."""
        return list(self.iter_cells())

    def iter_cells(self) -> Iterator[ExperimentCell]:
        index = 0
        for shape, scenario, faults, interval, lam, messages, flits, rate, fault_rate, seed in product(
            self.mesh_shapes, self.scenarios, self.fault_counts,
            self.fault_intervals, self.lams, self.traffic_sizes,
            self.flits, self.rates, self.fault_rates, self.seeds,
        ):
            rate = rate if self.mode == "throughput" else 0.0
            # The rate and fault_rate are excluded from the derivation (like
            # the policy): all points of one load curve share the same static
            # fault layout and the same underlying random stream (a Bernoulli
            # source thresholds identical draws), so the curve varies only
            # with the load and the dynamic fault process.
            cell_seed = derive_cell_seed(
                self.name, self.mode, shape, scenario, faults, interval, lam,
                messages, flits, seed,
            )
            for policy in self.policies:
                yield ExperimentCell(
                    index=index,
                    mode=self.mode,
                    shape=shape,
                    policy=policy,
                    faults=faults,
                    interval=interval,
                    lam=lam,
                    messages=messages,
                    seed=seed,
                    cell_seed=cell_seed,
                    contention=self.contention,
                    flits=flits,
                    scenario=scenario,
                    rate=rate,
                    injection=self.injection,
                    warmup=self.warmup,
                    measure=self.measure,
                    drain=self.drain,
                    fault_rate=fault_rate,
                    repair_after=self.repair_after,
                )
                index += 1

    @classmethod
    def from_dict(cls, data: object) -> "ExperimentSpec":
        """Parse the canonical ``repro.spec/v1`` payload into a spec.

        This is *the* parser for the wire and file formats: the ``sweep``
        CLI (both its grid flags and ``--spec FILE.json``), the HTTP
        service body and round-trips of :meth:`to_dict` all come through
        here, so every door validates identically.  Unknown keys, wrong
        types and out-of-range values are rejected with errors naming the
        offending field; a payload without a ``schema`` tag is accepted
        with a :class:`DeprecationWarning` for one release.
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"spec payload must be a JSON object, got {type(data).__name__}"
            )
        payload = dict(data)
        schema = payload.pop("schema", None)
        if schema is None:
            warnings.warn(
                "spec payloads without a 'schema' field are deprecated; "
                f"declare 'schema': {SPEC_SCHEMA!r}",
                DeprecationWarning,
                stacklevel=2,
            )
        elif schema != SPEC_SCHEMA:
            raise ValueError(
                f"unsupported spec schema {schema!r} "
                f"(this build speaks {SPEC_SCHEMA!r})"
            )
        # Derived on export; never an input (the grid size is what the
        # axes say it is).
        payload.pop("cell_count", None)
        unknown = sorted(set(payload) - set(_FIELD_PARSERS))
        if unknown:
            raise ValueError(
                "unknown spec field(s) "
                + ", ".join(repr(k) for k in unknown)
                + "; valid fields: "
                + ", ".join(sorted([*_FIELD_PARSERS, "schema"]))
            )
        kwargs = {
            name: parser(name, payload[name])
            for name, parser in _FIELD_PARSERS.items()
            if name in payload
        }
        return cls(**kwargs)

    def to_dict(self) -> dict:
        """The canonical ``repro.spec/v1`` payload (JSON-serializable)."""
        return {
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "mode": self.mode,
            "mesh_shapes": [list(s) for s in self.mesh_shapes],
            "policies": list(self.policies),
            "scenarios": list(self.scenarios),
            "fault_counts": list(self.fault_counts),
            "fault_intervals": list(self.fault_intervals),
            "lams": list(self.lams),
            "traffic_sizes": list(self.traffic_sizes),
            "seeds": list(self.seeds),
            "contention": self.contention,
            "flits": list(self.flits),
            "rates": list(self.rates),
            "injection": self.injection,
            "warmup": self.warmup,
            "measure": self.measure,
            "drain": self.drain,
            "fault_rates": list(self.fault_rates),
            "repair_after": self.repair_after,
            "cell_count": self.cell_count,
        }


# ---------------------------------------------------------------------- #
# deprecation shim: positional construction
# ---------------------------------------------------------------------- #
# The stable constructor surface is keyword arguments (or from_dict); the
# historic positional form keeps working for one release with a warning.
_SPEC_FIELD_ORDER = tuple(f.name for f in dataclass_fields(ExperimentSpec))
_SPEC_DATACLASS_INIT = ExperimentSpec.__init__


def _spec_init_shim(self, *args, **kwargs) -> None:
    if args:
        warnings.warn(
            "positional ExperimentSpec(...) arguments are deprecated and "
            "will become keyword-only: pass keywords or parse a payload "
            "with ExperimentSpec.from_dict",
            DeprecationWarning,
            stacklevel=2,
        )
        if len(args) > len(_SPEC_FIELD_ORDER):
            raise TypeError(
                f"ExperimentSpec takes at most {len(_SPEC_FIELD_ORDER)} arguments"
            )
        for name, value in zip(_SPEC_FIELD_ORDER, args):
            if name in kwargs:
                raise TypeError(f"ExperimentSpec got multiple values for {name!r}")
            kwargs[name] = value
    _SPEC_DATACLASS_INIT(self, **kwargs)


_spec_init_shim.__wrapped__ = _SPEC_DATACLASS_INIT
ExperimentSpec.__init__ = _spec_init_shim  # type: ignore[method-assign]
