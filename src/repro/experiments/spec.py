"""Declarative experiment grids.

An :class:`ExperimentSpec` describes a whole family of experiments as the
cartesian product of its axes — mesh shapes, traffic scenarios, fault
counts, fault intervals, λ values, routing policies, traffic sizes, message
lengths (flits), open-loop injection rates and replicate seeds.  The spec
expands into a flat list of :class:`ExperimentCell` items that the runner
(:mod:`repro.experiments.runner`) executes serially or across processes.

Determinism is the core contract: every cell carries a *configuration seed*
derived with a stable hash from the spec name and the cell's configuration
axes.  The policy axis is deliberately **excluded** from the derivation, so
cells that differ only in policy share the exact same mesh, fault layout and
traffic — policy columns of a result table are directly comparable, and a
batch produces identical results no matter how many workers ran it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from itertools import product
from typing import Iterable, Iterator, List, Tuple, Union

from repro.routing import available_routers

#: Experiment modes: ``simulate`` runs the step-synchronous simulator with a
#: dynamic fault schedule; ``offline`` routes a batch of messages against a
#: fully stabilized information state; ``throughput`` runs the open-loop
#: windowed measurement of :mod:`repro.throughput` (circuit contention on).
MODES = ("simulate", "offline", "throughput")

#: Closed-batch traffic families sweepable in ``simulate`` mode.
SIMULATE_SCENARIOS = ("random", "hotspot", "transpose", "bursty")

#: Open-loop spatial patterns sweepable in ``throughput`` mode (must match
#: :data:`repro.throughput.injection.PATTERNS`).
THROUGHPUT_SCENARIOS = ("uniform", "transpose", "hotspot")

#: Open-loop injection processes (``throughput`` mode).
INJECTIONS = ("bernoulli", "bursty")

#: Valid scenario values per mode (offline routes plain random batches).
SCENARIOS_BY_MODE = {
    "simulate": SIMULATE_SCENARIOS,
    "offline": ("random",),
    "throughput": THROUGHPUT_SCENARIOS,
}


def _registered_policies() -> Tuple[str, ...]:
    return available_routers()


#: Every registered router is sweepable in *both* modes: each routes offline
#: against a stabilized labeling and steps online inside the simulator.
#: (The two names are kept for callers that still distinguish the modes.)
SIMULATE_POLICIES = _registered_policies()
OFFLINE_POLICIES = _registered_policies()


def derive_cell_seed(name: str, *parts: object) -> int:
    """A deterministic 63-bit seed from the spec name and configuration axes.

    Uses SHA-256 rather than :func:`hash` so the value is stable across
    processes and interpreter runs (``PYTHONHASHSEED`` does not leak in).
    """
    text = "|".join([name, *[repr(p) for p in parts]])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class ExperimentCell:
    """One fully resolved grid point of an :class:`ExperimentSpec`."""

    index: int
    mode: str
    shape: Tuple[int, ...]
    policy: str
    faults: int
    interval: int
    lam: int
    messages: int
    seed: int

    #: Seed actually used to build the cell's mesh/faults/traffic; shared by
    #: every policy at the same configuration point.
    cell_seed: int = 0

    #: Whether the simulator runs the PCS circuit phase (always True in
    #: throughput mode).
    contention: bool = False

    #: Data-phase length of every message (circuit hold under contention).
    flits: int = 64

    #: Traffic family (closed-batch scenario or open-loop spatial pattern).
    scenario: str = "random"

    #: Offered injection rate per node per step (throughput mode only).
    rate: float = 0.0

    #: Open-loop injection process and measurement windows (throughput mode
    #: only; carried on the cell so workers need no shared state).
    injection: str = "bernoulli"
    warmup: int = 64
    measure: int = 256
    drain: int = 512

    #: Dynamic MTBF fault workload inside the measurement window (throughput
    #: mode only): per-step fault probability, and how many steps later each
    #: fault is repaired (0 = permanent).
    fault_rate: float = 0.0
    repair_after: int = 0

    def identity(self) -> dict:
        """Every parameter that determines this cell's result, JSON-shaped.

        The grid position (``index``) is deliberately excluded: two sweeps
        laying out the same configuration at different grid offsets must
        produce the same content address in the result cache
        (:mod:`repro.experiments.cache`).  Everything else — including the
        policy, the ``cell_seed`` and the throughput-mode injection
        windows — is part of the identity.
        """
        return {
            "mode": self.mode,
            "shape": list(self.shape),
            "policy": self.policy,
            "faults": self.faults,
            "interval": self.interval,
            "lam": self.lam,
            "messages": self.messages,
            "seed": self.seed,
            "cell_seed": self.cell_seed,
            "contention": self.contention,
            "flits": self.flits,
            "scenario": self.scenario,
            "rate": self.rate,
            "injection": self.injection,
            "warmup": self.warmup,
            "measure": self.measure,
            "drain": self.drain,
            "fault_rate": self.fault_rate,
            "repair_after": self.repair_after,
        }

    def config_key(self) -> Tuple[object, ...]:
        """The configuration axes (everything except the policy).

        The ``rate`` and ``fault_rate`` are part of the key — cells at
        different rates are different configurations — but like the policy
        they are *excluded* from the cell-seed derivation, so every point of
        a load curve shares one static fault layout and random stream.
        """
        return (self.mode, self.shape, self.scenario, self.faults, self.interval,
                self.lam, self.messages, self.flits, self.rate, self.seed,
                self.fault_rate, self.repair_after)


def _int_axis(value: Union[int, Iterable[int]]) -> Tuple[int, ...]:
    if isinstance(value, int):
        return (value,)
    return tuple(int(v) for v in value)


def _float_axis(value: Union[float, Iterable[float]]) -> Tuple[float, ...]:
    if isinstance(value, (int, float)):
        return (float(value),)
    return tuple(float(v) for v in value)


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative grid of experiments.

    Every axis is a tuple; :meth:`cells` expands the cartesian product in a
    fixed order (shape, scenario, faults, interval, λ, messages, flits,
    rate, fault_rate, seed, policy — policy innermost so comparable cells
    sit next to each other).  ``flits`` and ``scenario`` are first-class
    axes; a scalar ``flits`` is accepted and normalized to a one-element
    axis.
    """

    name: str = "sweep"
    mode: str = "simulate"
    mesh_shapes: Tuple[Tuple[int, ...], ...] = ((8, 8),)
    policies: Tuple[str, ...] = ("limited-global",)
    fault_counts: Tuple[int, ...] = (4,)
    fault_intervals: Tuple[int, ...] = (10,)
    lams: Tuple[int, ...] = (2,)
    traffic_sizes: Tuple[int, ...] = (12,)
    seeds: Tuple[int, ...] = (0,)

    #: Run the simulator's PCS circuit phase: concurrent path setups contend
    #: for links and delivered circuits hold their links for a
    #: ``flits``-derived time (forced on in throughput mode).
    contention: bool = False

    #: Message length(s) in flits — a sweepable axis (scalar accepted).
    flits: Union[int, Tuple[int, ...]] = (64,)

    #: Traffic families — closed-batch scenarios in simulate mode
    #: (:data:`SIMULATE_SCENARIOS`), open-loop spatial patterns in
    #: throughput mode (:data:`THROUGHPUT_SCENARIOS`).
    scenarios: Tuple[str, ...] = ()

    #: Offered injection rates per node per step (throughput mode).
    rates: Union[float, Tuple[float, ...]] = (0.05,)

    #: Open-loop injection process (throughput mode).
    injection: str = "bernoulli"

    #: Measurement windows in steps (throughput mode).
    warmup: int = 64
    measure: int = 256
    drain: int = 512

    #: Dynamic MTBF fault-rate axis (throughput mode; 0.0 = static faults
    #: only) and the shared repair delay in steps (0 = permanent faults).
    fault_rates: Union[float, Tuple[float, ...]] = (0.0,)
    repair_after: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "mesh_shapes", tuple(tuple(int(r) for r in s) for s in self.mesh_shapes)
        )
        for attr in ("policies", "fault_counts", "fault_intervals", "lams",
                     "traffic_sizes", "seeds"):
            object.__setattr__(self, attr, tuple(getattr(self, attr)))
        object.__setattr__(self, "flits", _int_axis(self.flits))
        object.__setattr__(self, "rates", _float_axis(self.rates))
        object.__setattr__(self, "fault_rates", _float_axis(self.fault_rates))
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if not self.scenarios:
            default = "uniform" if self.mode == "throughput" else "random"
            object.__setattr__(self, "scenarios", (default,))
        else:
            object.__setattr__(self, "scenarios", tuple(self.scenarios))
        if self.mode == "throughput":
            # Open-loop saturation is only meaningful with the circuit
            # phase: without link contention nothing ever saturates.
            object.__setattr__(self, "contention", True)
        registered = available_routers()
        for policy in self.policies:
            if policy not in registered:
                raise ValueError(
                    f"policy {policy!r} is not a registered router "
                    f"(choose from {registered})"
                )
        valid_scenarios = SCENARIOS_BY_MODE[self.mode]
        for scenario in self.scenarios:
            if scenario not in valid_scenarios:
                raise ValueError(
                    f"scenario {scenario!r} is not valid in {self.mode} mode "
                    f"(choose from {valid_scenarios})"
                )
        if "transpose" in self.scenarios:
            for shape in self.mesh_shapes:
                if len(set(shape)) != 1:
                    raise ValueError(
                        f"transpose traffic requires uniform (cubic) meshes, got {shape}"
                    )
        if self.contention and self.mode == "offline":
            raise ValueError("contention requires simulate mode (offline has no circuit phase)")
        for flits in self.flits:
            if flits < 0:
                raise ValueError("flits must be non-negative")
        for rate in self.rates:
            if not 0.0 < rate <= 1.0:
                raise ValueError("rates must be within (0, 1]")
        if self.injection not in INJECTIONS:
            raise ValueError(f"injection must be one of {INJECTIONS}")
        if self.warmup < 0 or self.measure < 1 or self.drain < 0:
            raise ValueError("warmup/drain must be >= 0 and measure >= 1")
        for axis in ("mesh_shapes", "policies", "scenarios", "fault_counts",
                     "fault_intervals", "lams", "traffic_sizes", "seeds",
                     "flits", "rates"):
            if not getattr(self, axis):
                raise ValueError(f"{axis} must be non-empty")
        for shape in self.mesh_shapes:
            if len(shape) < 1 or any(r < 2 for r in shape):
                raise ValueError(f"invalid mesh shape {shape}")
        if self.mode == "offline" and (len(self.fault_intervals) > 1 or len(self.lams) > 1):
            # Offline cells never read interval/λ; a multi-valued axis would
            # just rerun differently-seeded replicates disguised as distinct
            # configurations.
            raise ValueError(
                "offline mode ignores fault_intervals and lams; "
                "give each a single value"
            )
        if self.mode != "throughput" and len(self.rates) > 1:
            raise ValueError(
                "rates is a throughput-mode axis; give a single value otherwise"
            )
        for fault_rate in self.fault_rates:
            if not 0.0 <= fault_rate < 1.0:
                raise ValueError("fault_rates must be within [0, 1)")
        if self.repair_after < 0:
            raise ValueError("repair_after must be non-negative")
        if self.mode != "throughput" and (
            len(self.fault_rates) > 1 or self.fault_rates[0] > 0.0
        ):
            raise ValueError(
                "fault_rates is a throughput-mode axis; leave it at 0.0 otherwise"
            )
        if self.mode == "throughput" and (
            len(self.fault_intervals) > 1 or len(self.traffic_sizes) > 1
        ):
            # Open-loop cells use static pre-stabilized faults and generate
            # their own traffic from the rate axis.
            raise ValueError(
                "throughput mode ignores fault_intervals and traffic_sizes; "
                "give each a single value"
            )

    @property
    def cell_count(self) -> int:
        """Number of grid points the spec expands to."""
        return (
            len(self.mesh_shapes) * len(self.scenarios) * len(self.fault_counts)
            * len(self.fault_intervals) * len(self.lams) * len(self.traffic_sizes)
            * len(self.flits) * len(self.rates) * len(self.fault_rates)
            * len(self.seeds) * len(self.policies)
        )

    def cells(self) -> List[ExperimentCell]:
        """Expand the grid into its cells, in deterministic order."""
        return list(self.iter_cells())

    def iter_cells(self) -> Iterator[ExperimentCell]:
        index = 0
        for shape, scenario, faults, interval, lam, messages, flits, rate, fault_rate, seed in product(
            self.mesh_shapes, self.scenarios, self.fault_counts,
            self.fault_intervals, self.lams, self.traffic_sizes,
            self.flits, self.rates, self.fault_rates, self.seeds,
        ):
            rate = rate if self.mode == "throughput" else 0.0
            # The rate and fault_rate are excluded from the derivation (like
            # the policy): all points of one load curve share the same static
            # fault layout and the same underlying random stream (a Bernoulli
            # source thresholds identical draws), so the curve varies only
            # with the load and the dynamic fault process.
            cell_seed = derive_cell_seed(
                self.name, self.mode, shape, scenario, faults, interval, lam,
                messages, flits, seed,
            )
            for policy in self.policies:
                yield ExperimentCell(
                    index=index,
                    mode=self.mode,
                    shape=shape,
                    policy=policy,
                    faults=faults,
                    interval=interval,
                    lam=lam,
                    messages=messages,
                    seed=seed,
                    cell_seed=cell_seed,
                    contention=self.contention,
                    flits=flits,
                    scenario=scenario,
                    rate=rate,
                    injection=self.injection,
                    warmup=self.warmup,
                    measure=self.measure,
                    drain=self.drain,
                    fault_rate=fault_rate,
                    repair_after=self.repair_after,
                )
                index += 1

    def to_dict(self) -> dict:
        """JSON-serializable description of the spec."""
        return {
            "name": self.name,
            "mode": self.mode,
            "mesh_shapes": [list(s) for s in self.mesh_shapes],
            "policies": list(self.policies),
            "scenarios": list(self.scenarios),
            "fault_counts": list(self.fault_counts),
            "fault_intervals": list(self.fault_intervals),
            "lams": list(self.lams),
            "traffic_sizes": list(self.traffic_sizes),
            "seeds": list(self.seeds),
            "contention": self.contention,
            "flits": list(self.flits),
            "rates": list(self.rates),
            "injection": self.injection,
            "warmup": self.warmup,
            "measure": self.measure,
            "drain": self.drain,
            "fault_rates": list(self.fault_rates),
            "repair_after": self.repair_after,
            "cell_count": self.cell_count,
        }
