"""Declarative experiment grids.

An :class:`ExperimentSpec` describes a whole family of experiments as the
cartesian product of its axes — mesh shapes, fault counts, fault intervals,
λ values, routing policies, traffic sizes and replicate seeds.  The spec
expands into a flat list of :class:`ExperimentCell` items that the runner
(:mod:`repro.experiments.runner`) executes serially or across processes.

Determinism is the core contract: every cell carries a *configuration seed*
derived with a stable hash from the spec name and the cell's configuration
axes.  The policy axis is deliberately **excluded** from the derivation, so
cells that differ only in policy share the exact same mesh, fault layout and
traffic — policy columns of a result table are directly comparable, and a
batch produces identical results no matter how many workers ran it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from itertools import product
from typing import Iterator, List, Tuple

from repro.routing import available_routers

#: Experiment modes: ``simulate`` runs the step-synchronous simulator with a
#: dynamic fault schedule; ``offline`` routes a batch of messages against a
#: fully stabilized information state.
MODES = ("simulate", "offline")


def _registered_policies() -> Tuple[str, ...]:
    return available_routers()


#: Every registered router is sweepable in *both* modes: each routes offline
#: against a stabilized labeling and steps online inside the simulator.
#: (The two names are kept for callers that still distinguish the modes.)
SIMULATE_POLICIES = _registered_policies()
OFFLINE_POLICIES = _registered_policies()


def derive_cell_seed(name: str, *parts: object) -> int:
    """A deterministic 63-bit seed from the spec name and configuration axes.

    Uses SHA-256 rather than :func:`hash` so the value is stable across
    processes and interpreter runs (``PYTHONHASHSEED`` does not leak in).
    """
    text = "|".join([name, *[repr(p) for p in parts]])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class ExperimentCell:
    """One fully resolved grid point of an :class:`ExperimentSpec`."""

    index: int
    mode: str
    shape: Tuple[int, ...]
    policy: str
    faults: int
    interval: int
    lam: int
    messages: int
    seed: int

    #: Seed actually used to build the cell's mesh/faults/traffic; shared by
    #: every policy at the same configuration point.
    cell_seed: int = 0

    #: Whether the simulator runs the PCS circuit phase (simulate mode only).
    contention: bool = False

    #: Data-phase length of every message (circuit hold under contention).
    flits: int = 64

    def config_key(self) -> Tuple[object, ...]:
        """The configuration axes (everything except the policy)."""
        return (self.mode, self.shape, self.faults, self.interval, self.lam,
                self.messages, self.seed)


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative grid of experiments.

    Every axis is a tuple; :meth:`cells` expands the cartesian product in a
    fixed order (shape, faults, interval, λ, messages, seed, policy — policy
    innermost so comparable cells sit next to each other).
    """

    name: str = "sweep"
    mode: str = "simulate"
    mesh_shapes: Tuple[Tuple[int, ...], ...] = ((8, 8),)
    policies: Tuple[str, ...] = ("limited-global",)
    fault_counts: Tuple[int, ...] = (4,)
    fault_intervals: Tuple[int, ...] = (10,)
    lams: Tuple[int, ...] = (2,)
    traffic_sizes: Tuple[int, ...] = (12,)
    seeds: Tuple[int, ...] = (0,)

    #: Run the simulator's PCS circuit phase: concurrent path setups contend
    #: for links and delivered circuits hold their links for a
    #: ``flits``-derived time (simulate mode only).
    contention: bool = False

    #: Message length in flits for every generated message.
    flits: int = 64

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "mesh_shapes", tuple(tuple(int(r) for r in s) for s in self.mesh_shapes)
        )
        for attr in ("policies", "fault_counts", "fault_intervals", "lams",
                     "traffic_sizes", "seeds"):
            object.__setattr__(self, attr, tuple(getattr(self, attr)))
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        registered = available_routers()
        for policy in self.policies:
            if policy not in registered:
                raise ValueError(
                    f"policy {policy!r} is not a registered router "
                    f"(choose from {registered})"
                )
        if self.contention and self.mode != "simulate":
            raise ValueError("contention requires simulate mode (offline has no circuit phase)")
        if self.flits < 0:
            raise ValueError("flits must be non-negative")
        for axis in ("mesh_shapes", "policies", "fault_counts", "fault_intervals",
                     "lams", "traffic_sizes", "seeds"):
            if not getattr(self, axis):
                raise ValueError(f"{axis} must be non-empty")
        for shape in self.mesh_shapes:
            if len(shape) < 1 or any(r < 2 for r in shape):
                raise ValueError(f"invalid mesh shape {shape}")
        if self.mode == "offline" and (len(self.fault_intervals) > 1 or len(self.lams) > 1):
            # Offline cells never read interval/λ; a multi-valued axis would
            # just rerun differently-seeded replicates disguised as distinct
            # configurations.
            raise ValueError(
                "offline mode ignores fault_intervals and lams; "
                "give each a single value"
            )

    @property
    def cell_count(self) -> int:
        """Number of grid points the spec expands to."""
        return (
            len(self.mesh_shapes) * len(self.fault_counts) * len(self.fault_intervals)
            * len(self.lams) * len(self.traffic_sizes) * len(self.seeds)
            * len(self.policies)
        )

    def cells(self) -> List[ExperimentCell]:
        """Expand the grid into its cells, in deterministic order."""
        return list(self.iter_cells())

    def iter_cells(self) -> Iterator[ExperimentCell]:
        index = 0
        for shape, faults, interval, lam, messages, seed in product(
            self.mesh_shapes, self.fault_counts, self.fault_intervals,
            self.lams, self.traffic_sizes, self.seeds,
        ):
            cell_seed = derive_cell_seed(
                self.name, self.mode, shape, faults, interval, lam, messages, seed
            )
            for policy in self.policies:
                yield ExperimentCell(
                    index=index,
                    mode=self.mode,
                    shape=shape,
                    policy=policy,
                    faults=faults,
                    interval=interval,
                    lam=lam,
                    messages=messages,
                    seed=seed,
                    cell_seed=cell_seed,
                    contention=self.contention,
                    flits=self.flits,
                )
                index += 1

    def to_dict(self) -> dict:
        """JSON-serializable description of the spec."""
        return {
            "name": self.name,
            "mode": self.mode,
            "mesh_shapes": [list(s) for s in self.mesh_shapes],
            "policies": list(self.policies),
            "fault_counts": list(self.fault_counts),
            "fault_intervals": list(self.fault_intervals),
            "lams": list(self.lams),
            "traffic_sizes": list(self.traffic_sizes),
            "seeds": list(self.seeds),
            "contention": self.contention,
            "flits": self.flits,
            "cell_count": self.cell_count,
        }
