"""Analysis utilities: detour bounds, convergence measurement, metrics.

* :mod:`repro.analysis.detour_bounds` — the analytical bounds of
  Theorems 3, 4 and 5 as functions of the dynamic-fault parameters;
* :mod:`repro.analysis.convergence` — measuring ``a_i`` / ``b_i`` / ``c_i``
  for given block sizes and dimensions, plus the closed-form expectations;
* :mod:`repro.analysis.metrics` — routing-quality metrics, policy
  comparison tables and the memory-footprint accounting;
* :mod:`repro.analysis.throughput` — load-curve tables over throughput-mode
  experiment batches and the monotone/flattening shape checks;
* :mod:`repro.analysis.slo` — per-fault-event recovery SLOs (throughput dip
  depth, time-to-recover, p99 setup-latency excursion) off per-step series.
"""

from repro.analysis.convergence import (
    ConvergenceMeasurement,
    expected_boundary_rounds,
    expected_identification_rounds,
    expected_labeling_rounds,
    measure_convergence,
)
from repro.analysis.detour_bounds import (
    DetourBoundParameters,
    theorem3_distance_bounds,
    theorem4_interval_bound,
    theorem4_max_detours,
    theorem5_interval_bound,
)
from repro.analysis.metrics import (
    PolicyComparison,
    compare_policies,
    contention_row,
    global_table_cells,
    limited_global_cells,
    summarize_routes,
)
from repro.analysis.slo import (
    EventSlo,
    RecoverySlo,
    compute_recovery_slo,
    event_transient,
    moving_average,
    p99_excursion,
)
from repro.analysis.throughput import (
    CURVE_COLUMNS,
    flattens,
    is_monotone_nondecreasing,
    throughput_rows,
)

__all__ = [
    "CURVE_COLUMNS",
    "ConvergenceMeasurement",
    "DetourBoundParameters",
    "EventSlo",
    "PolicyComparison",
    "RecoverySlo",
    "compare_policies",
    "compute_recovery_slo",
    "contention_row",
    "event_transient",
    "expected_boundary_rounds",
    "expected_identification_rounds",
    "expected_labeling_rounds",
    "flattens",
    "moving_average",
    "p99_excursion",
    "global_table_cells",
    "is_monotone_nondecreasing",
    "limited_global_cells",
    "measure_convergence",
    "summarize_routes",
    "throughput_rows",
    "theorem3_distance_bounds",
    "theorem4_interval_bound",
    "theorem4_max_detours",
    "theorem5_interval_bound",
]
