"""Analysis utilities: detour bounds, convergence measurement, metrics.

* :mod:`repro.analysis.detour_bounds` — the analytical bounds of
  Theorems 3, 4 and 5 as functions of the dynamic-fault parameters;
* :mod:`repro.analysis.convergence` — measuring ``a_i`` / ``b_i`` / ``c_i``
  for given block sizes and dimensions, plus the closed-form expectations;
* :mod:`repro.analysis.metrics` — routing-quality metrics, policy
  comparison tables and the memory-footprint accounting.
"""

from repro.analysis.convergence import (
    ConvergenceMeasurement,
    expected_boundary_rounds,
    expected_identification_rounds,
    expected_labeling_rounds,
    measure_convergence,
)
from repro.analysis.detour_bounds import (
    DetourBoundParameters,
    theorem3_distance_bounds,
    theorem4_interval_bound,
    theorem4_max_detours,
    theorem5_interval_bound,
)
from repro.analysis.metrics import (
    PolicyComparison,
    compare_policies,
    contention_row,
    global_table_cells,
    limited_global_cells,
    summarize_routes,
)

__all__ = [
    "ConvergenceMeasurement",
    "DetourBoundParameters",
    "PolicyComparison",
    "compare_policies",
    "contention_row",
    "expected_boundary_rounds",
    "expected_identification_rounds",
    "expected_labeling_rounds",
    "global_table_cells",
    "limited_global_cells",
    "measure_convergence",
    "summarize_routes",
    "theorem3_distance_bounds",
    "theorem4_interval_bound",
    "theorem4_max_detours",
    "theorem5_interval_bound",
]
