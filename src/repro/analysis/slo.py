"""Recovery SLOs: per-fault-event transient cost of a measured run.

When a fault fires under load the network pays a transient: delivered
throughput dips while torn-down circuits retry, setup latency spikes while
probes detour around the not-yet-labeled block, and some in-transfer
circuits are dropped outright.  This module quantifies that transient per
event from per-step series (the :class:`~repro.obs.recorder.StepRecorder`
delta columns, or the equivalent series of a JSONL trace):

* **dip depth** — fraction of the pre-event delivered-throughput baseline
  lost at the deepest point of the post-event trough;
* **time to recover** — steps until smoothed throughput is back within
  ``recover_fraction`` (default 90%) of the baseline; ``-1`` when it never
  gets there inside the recorded window;
* **p99 setup-latency excursion** — post-event p99 minus pre-event p99
  over the delivered messages finishing near the event;
* **fault-dropped circuits** — in-transfer circuits torn down by the event.

Everything here is pure series arithmetic — no simulator imports — so the
same code scores a live recorder, a parsed trace, and the synthetic series
in the unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "EventSlo",
    "RecoverySlo",
    "compute_recovery_slo",
    "event_transient",
    "moving_average",
    "p99_excursion",
]

#: Steps of pre-event history used for the throughput / latency baseline.
DEFAULT_BASELINE_WINDOW = 32
#: Trailing moving-average window applied before dip/recovery detection.
DEFAULT_SMOOTH = 8
#: Recovered = smoothed throughput back within this fraction of baseline.
DEFAULT_RECOVER_FRACTION = 0.9
#: Steps of post-event history scanned for the latency excursion.
DEFAULT_EXCURSION_WINDOW = 64


def moving_average(series: Sequence[float], window: int) -> List[float]:
    """Trailing moving average: mean of the last ``window`` values at each step."""
    if window < 1:
        raise ValueError("window must be at least 1")
    out: List[float] = []
    running = 0.0
    for i, value in enumerate(series):
        running += float(value)
        if i >= window:
            running -= float(series[i - window])
        out.append(running / min(i + 1, window))
    return out


def _p99(values: List[float]) -> float:
    """Nearest-rank p99 of an unsorted list (0.0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, int(0.99 * len(ordered) + 0.5) - 1)
    return ordered[min(rank, len(ordered) - 1)]


def event_transient(
    series: Sequence[float],
    t: int,
    *,
    baseline_window: int = DEFAULT_BASELINE_WINDOW,
    smooth: int = DEFAULT_SMOOTH,
    recover_fraction: float = DEFAULT_RECOVER_FRACTION,
) -> Tuple[float, float, int]:
    """Transient of one event at step ``t`` against a per-step series.

    Returns ``(baseline, dip_depth, time_to_recover)``.  The series is
    smoothed with a trailing ``smooth``-step moving average; the baseline
    is the smoothed mean over the ``baseline_window`` steps before ``t``;
    recovery is the first step at or after ``t`` where the smoothed series
    is back at ``recover_fraction * baseline`` (``-1`` when that never
    happens inside the series); the dip depth is measured at the deepest
    trough between the event and the recovery (or the series end).

    With no usable pre-event history (``t == 0`` or a zero baseline) there
    is nothing to dip from: the transient is ``(baseline, 0.0, 0)``.
    """
    if t < 0:
        raise ValueError("event step must be non-negative")
    if not 0.0 < recover_fraction <= 1.0:
        raise ValueError("recover_fraction must be within (0, 1]")
    if t >= len(series):
        return 0.0, 0.0, -1
    smoothed = moving_average(series, smooth)
    pre = smoothed[max(0, t - baseline_window) : t]
    baseline = sum(pre) / len(pre) if pre else 0.0
    if baseline <= 0.0:
        return baseline, 0.0, 0
    threshold = recover_fraction * baseline
    recover_at = -1
    for u in range(t, len(smoothed)):
        if smoothed[u] >= threshold:
            recover_at = u
            break
    trough_slice = smoothed[t : recover_at + 1] if recover_at >= 0 else smoothed[t:]
    trough = min(trough_slice) if trough_slice else baseline
    dip_depth = max(0.0, (baseline - trough) / baseline)
    time_to_recover = recover_at - t if recover_at >= 0 else -1
    return baseline, dip_depth, time_to_recover


def p99_excursion(
    latencies_by_finish: Sequence[Tuple[int, float]],
    t: int,
    *,
    baseline_window: int = DEFAULT_BASELINE_WINDOW,
    excursion_window: int = DEFAULT_EXCURSION_WINDOW,
) -> float:
    """Post-event p99 setup latency minus the pre-event p99.

    ``latencies_by_finish`` pairs each delivered message's finish step with
    its setup latency.  Either side empty means there is no comparison to
    make and the excursion is 0.
    """
    pre = [lat for f, lat in latencies_by_finish if t - baseline_window <= f < t]
    post = [lat for f, lat in latencies_by_finish if t <= f < t + excursion_window]
    if not pre or not post:
        return 0.0
    return _p99(post) - _p99(pre)


@dataclass(frozen=True)
class EventSlo:
    """Transient cost of one fault event."""

    time: int
    node: Tuple[int, ...]
    baseline: float
    dip_depth: float
    #: Steps from the event until throughput is back within the recovery
    #: fraction of baseline; ``-1`` = never inside the recorded window.
    time_to_recover: int
    p99_excursion: float
    fault_dropped: int

    @property
    def recovered(self) -> bool:
        return self.time_to_recover >= 0


@dataclass(frozen=True)
class RecoverySlo:
    """All fault-event transients of one run, with worst-case aggregates."""

    events: Tuple[EventSlo, ...]

    @property
    def dip_depth(self) -> float:
        """Deepest throughput dip across events (0.0 with no events)."""
        return max((e.dip_depth for e in self.events), default=0.0)

    @property
    def time_to_recover(self) -> int:
        """Slowest recovery across events; ``-1`` if any event never recovers."""
        if any(not e.recovered for e in self.events):
            return -1
        return max((e.time_to_recover for e in self.events), default=0)

    @property
    def p99_excursion(self) -> float:
        return max((e.p99_excursion for e in self.events), default=0.0)

    @property
    def fault_dropped(self) -> int:
        return sum(e.fault_dropped for e in self.events)

    def summary(self) -> Dict[str, float]:
        """Flat floats, shaped for a result row / report line."""
        return {
            "fault_events": float(len(self.events)),
            "fault_dropped": float(self.fault_dropped),
            "slo_dip_depth": self.dip_depth,
            "slo_time_to_recover": float(self.time_to_recover),
            "slo_p99_excursion": self.p99_excursion,
        }


def compute_recovery_slo(
    delivered: Sequence[float],
    fault_dropped: Sequence[float],
    events: Sequence[Tuple[int, Tuple[int, ...]]],
    *,
    latencies_by_finish: Sequence[Tuple[int, float]] = (),
    baseline_window: int = DEFAULT_BASELINE_WINDOW,
    smooth: int = DEFAULT_SMOOTH,
    recover_fraction: float = DEFAULT_RECOVER_FRACTION,
    excursion_window: int = DEFAULT_EXCURSION_WINDOW,
) -> RecoverySlo:
    """Score every fault event against the run's per-step series.

    ``delivered`` and ``fault_dropped`` are per-step delta series (deliveries
    and fault-dropped circuits during each step); ``events`` lists the FAULT
    events as ``(step, node)`` in time order.  Dropped circuits are
    attributed to the most recent event at or before their step.
    """
    ordered = sorted((int(t), tuple(node)) for t, node in events)
    scored: List[EventSlo] = []
    for i, (t, node) in enumerate(ordered):
        baseline, dip, ttr = event_transient(
            delivered,
            t,
            baseline_window=baseline_window,
            smooth=smooth,
            recover_fraction=recover_fraction,
        )
        window_end = ordered[i + 1][0] if i + 1 < len(ordered) else len(fault_dropped)
        dropped = int(sum(fault_dropped[t:window_end]))
        scored.append(
            EventSlo(
                time=t,
                node=node,
                baseline=baseline,
                dip_depth=dip,
                time_to_recover=ttr,
                p99_excursion=p99_excursion(
                    latencies_by_finish,
                    t,
                    baseline_window=baseline_window,
                    excursion_window=excursion_window,
                ),
                fault_dropped=dropped,
            )
        )
    return RecoverySlo(events=tuple(scored))
