"""Routing-quality metrics, policy comparisons and memory accounting.

These helpers produce the rows of the companion-style comparison tables:

* :func:`summarize_routes` — delivery rate, mean/max detours, backtracks for
  a batch of :class:`~repro.core.routing.RouteResult`;
* :func:`compare_policies` — route the same source/destination batch under
  the limited-global model, the no-information baseline, the static-block
  baseline and the global-information ideal, against the same stabilized
  fault configuration;
* :func:`limited_global_cells` / :func:`global_table_cells` — the memory
  footprint comparison the paper argues qualitatively ("our approach reduces
  the memory requirement to store fault information in the whole network").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, Optional, Sequence, Tuple

from repro.core.block_construction import LabelingState, extract_blocks
from repro.core.distribution import distribute_information
from repro.core.routing import RouteOutcome, RouteResult
from repro.core.state import InformationState
from repro.mesh.topology import Mesh
from repro.routing import resolve_router
from repro.simulator.stats import SimulationStats

Coord = Tuple[int, ...]
Pair = Tuple[Coord, Coord]


@dataclass(frozen=True)
class RouteSummary:
    """Aggregate statistics over a batch of route results."""

    routes: int
    delivered: int
    delivery_rate: float
    mean_hops: float
    mean_detours: float
    max_detours: int
    mean_backtracks: float

    @classmethod
    def empty(cls) -> "RouteSummary":
        """Summary of an empty batch."""
        return cls(0, 0, 1.0, 0.0, 0.0, 0, 0.0)


def summarize_routes(results: Sequence[RouteResult]) -> RouteSummary:
    """Aggregate a batch of route results into a :class:`RouteSummary`."""
    if not results:
        return RouteSummary.empty()
    delivered = [r for r in results if r.outcome is RouteOutcome.DELIVERED]
    return RouteSummary(
        routes=len(results),
        delivered=len(delivered),
        delivery_rate=len(delivered) / len(results),
        mean_hops=mean(r.hops for r in delivered) if delivered else 0.0,
        mean_detours=mean(r.detours or 0 for r in delivered) if delivered else 0.0,
        max_detours=max((r.detours or 0 for r in delivered), default=0),
        mean_backtracks=mean(r.backtrack_hops for r in delivered) if delivered else 0.0,
    )


@dataclass
class PolicyComparison:
    """Per-policy summaries for the same configuration and traffic."""

    mesh_shape: Tuple[int, ...]
    fault_count: int
    summaries: Dict[str, RouteSummary] = field(default_factory=dict)

    def row(self, metric: str = "mean_detours") -> Dict[str, float]:
        """One table row: the chosen metric for every policy."""
        return {name: getattr(summary, metric) for name, summary in self.summaries.items()}


def compare_policies(
    mesh: Mesh,
    labeling: LabelingState,
    pairs: Sequence[Pair],
    *,
    include_static_block: bool = True,
    include_global: bool = True,
    max_steps: Optional[int] = None,
) -> PolicyComparison:
    """Route every pair under each policy against the same stabilized faults.

    Policies are resolved through the router registry, so the comparison
    table automatically reflects :func:`repro.routing.available_routers`.
    """
    comparison = PolicyComparison(
        mesh_shape=mesh.shape, fault_count=len(labeling.faulty_nodes)
    )

    names = ["limited-global", "no-information"]
    if include_static_block:
        names.append("static-block")
    if include_global:
        names.append("global-information")
    for name in names:
        router = resolve_router(name)
        routes = [
            router.route(mesh, labeling, s, d, max_steps=max_steps) for s, d in pairs
        ]
        comparison.summaries[name] = summarize_routes(routes)
    return comparison


# ---------------------------------------------------------------------- #
# circuit-contention accounting
# ---------------------------------------------------------------------- #
def contention_row(stats: SimulationStats, mesh: Mesh) -> Dict[str, float]:
    """One row of the circuit-contention table for a finished simulation.

    ``link_utilization`` normalizes the mean circuit hold occupancy by the
    mesh's total (undirected) link count, so rows from differently sized
    meshes are comparable.
    """
    total_links = sum(
        (s - 1) * mesh.size // s for s in mesh.shape
    )
    return {
        "messages": float(len(stats.messages)),
        "delivery_rate": stats.delivery_rate,
        "blocked_hops": float(stats.total_blocked_hops),
        "setup_retries": float(stats.total_setup_retries),
        "circuits_reserved": float(stats.circuits_reserved),
        "mean_reserved_links": stats.mean_reserved_links,
        "peak_reserved_links": float(stats.peak_reserved_links),
        "link_utilization": (
            stats.mean_reserved_links / total_links if total_links else 0.0
        ),
    }


# ---------------------------------------------------------------------- #
# memory footprint accounting
# ---------------------------------------------------------------------- #
def limited_global_cells(info: InformationState) -> int:
    """Information cells stored by the limited-global model."""
    return info.information_cells()


def global_table_cells(mesh: Mesh, labeling: LabelingState) -> int:
    """Cells a per-node global fault table would store for the same faults.

    Every node keeps one entry per faulty block (the conventional
    routing-table-per-node organization the paper contrasts against).
    """
    blocks = extract_blocks(labeling)
    return mesh.size * len(blocks)


def memory_footprint_row(mesh: Mesh, labeling: LabelingState) -> Dict[str, float]:
    """One row of the memory comparison table."""
    info = distribute_information(mesh, labeling)
    limited = limited_global_cells(info)
    table = global_table_cells(mesh, labeling)
    return {
        "mesh_nodes": float(mesh.size),
        "blocks": float(len(extract_blocks(labeling))),
        "limited_global_cells": float(limited),
        "global_table_cells": float(table),
        "reduction_factor": float(table) / limited if limited else float("inf"),
    }
