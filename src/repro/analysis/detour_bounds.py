"""Analytical detour bounds (Theorems 3, 4 and 5).

The paper bounds the progress of a routing message under dynamic faults in
terms of:

* ``D``      — distance from the source to the destination at start time,
* ``t``      — the routing start time and ``t_p`` the time of the last fault
  before the start (``p`` faults already present),
* ``d_i``    — the interval between fault occurrences ``i`` and ``i+1``,
* ``a_i``    — rounds for the block construction of fault ``i`` to converge,
* ``e_max``  — the maximum block edge length,
* ``L``      — for unsafe sources, the length of some existing path.

Theorem 3 bounds the remaining distance ``D(i)`` at each fault occurrence;
Theorem 4 bounds the number of intervals ``k`` a routing from a *safe*
source needs and the total number of detours ``k * (e_max + a_max)``;
Theorem 5 generalizes the interval bound to any source with an existing
path of length ``L``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class DetourBoundParameters:
    """Inputs shared by the three theorems."""

    #: Distance from source to destination at the routing start time
    #: (Theorem 5 uses the existing-path length ``L`` instead).
    distance: int

    #: Routing start time ``t``.
    start_time: int

    #: Occurrence time ``t_p`` of the last fault before the routing started.
    last_fault_time: int

    #: Intervals ``d_p, d_{p+1}, ...`` between successive fault occurrences
    #: starting with the one in progress when the routing starts.
    intervals: Sequence[int]

    #: Convergence rounds ``a_p, a_{p+1}, ...`` of the corresponding block
    #: constructions (same indexing as ``intervals``).
    labeling_rounds: Sequence[int]

    #: Maximum block edge length ``e_max``.
    e_max: int

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise ValueError("distance must be non-negative")
        if self.e_max < 0:
            raise ValueError("e_max must be non-negative")
        if len(self.labeling_rounds) < len(self.intervals):
            raise ValueError(
                "need a labeling-round figure for every interval "
                f"({len(self.labeling_rounds)} < {len(self.intervals)})"
            )
        if self.last_fault_time > self.start_time:
            raise ValueError("t_p must not exceed the routing start time t")

    @property
    def a_max(self) -> int:
        """``a_max = max_i a_i`` (0 when no dynamic fault occurs)."""
        return max(self.labeling_rounds, default=0)


def _per_interval_progress(params: DetourBoundParameters, index: int) -> int:
    """Guaranteed progress ``d_i - 2 a_i - 2 e_max`` during interval ``index``."""
    return (
        params.intervals[index]
        - 2 * params.labeling_rounds[index]
        - 2 * params.e_max
    )


def theorem3_distance_bounds(params: DetourBoundParameters) -> List[int]:
    """Upper bounds on the remaining distance ``D(i)`` (Theorem 3).

    Entry ``j`` of the returned list bounds the distance to the destination
    when the ``(p + j + 1)``-th fault occurs (i.e. after ``j + 1`` complete
    intervals of the routing): the first interval is shortened by the
    routing's start offset ``t - t_p``, later intervals contribute their full
    guaranteed progress.  Bounds are clamped at zero from below only in the
    sense that a negative bound means the routing must already have finished.
    """
    bounds: List[int] = []
    remaining = params.distance
    for j in range(len(params.intervals)):
        progress = _per_interval_progress(params, j)
        if j == 0:
            progress -= params.start_time - params.last_fault_time
        remaining = remaining - progress
        bounds.append(remaining)
    return bounds


def theorem4_interval_bound(params: DetourBoundParameters) -> int:
    """Theorem 4: number of intervals within which a safe-source routing ends.

    ``k <= max{l | D + t - t_p - sum_{i=p}^{p+l-2}(d_i - 2 a_i - 2 e_max) > 0}``.
    The sum is empty for ``l = 1``, so the bound is always at least 1 when
    ``D + t - t_p > 0``.
    """
    budget = params.distance + params.start_time - params.last_fault_time
    if budget <= 0:
        return 0
    k = 1
    consumed = 0
    for j in range(len(params.intervals)):
        consumed += _per_interval_progress(params, j)
        if budget - consumed > 0:
            k = j + 2
        else:
            break
    return k


def theorem4_max_detours(params: DetourBoundParameters) -> int:
    """Theorem 4: the maximum number of detours ``k * (e_max + a_max)``."""
    return theorem4_interval_bound(params) * (params.e_max + params.a_max)


def theorem5_interval_bound(
    params: DetourBoundParameters, path_length: Optional[int] = None
) -> int:
    """Theorem 5: interval bound for any source with an existing path.

    Identical to Theorem 4 with the source-destination distance replaced by
    the length ``L`` of an existing path from the (possibly unsafe) source.
    """
    length = params.distance if path_length is None else path_length
    adjusted = DetourBoundParameters(
        distance=length,
        start_time=params.start_time,
        last_fault_time=params.last_fault_time,
        intervals=params.intervals,
        labeling_rounds=params.labeling_rounds,
        e_max=params.e_max,
    )
    return theorem4_interval_bound(adjusted)
