"""Analysis of open-loop throughput sweeps.

Table/curve helpers over a ``throughput``-mode
:class:`~repro.experiments.results.BatchResult` plus the two shape checks
the saturation methodology relies on (and the tests assert):

* :func:`is_monotone_nondecreasing` — an accepted-throughput curve should
  rise with offered load up to saturation (small tolerance for measurement
  noise);
* :func:`flattens` — past the knee the curve should stop tracking offered
  load: the tail's marginal efficiency (extra accepted per extra offered)
  collapses relative to the zero-load efficiency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.results import BatchResult

#: Metric columns of one load-curve row, in display order.
CURVE_COLUMNS = (
    "rate",
    "offered_load",
    "accepted_throughput",
    "delivery_rate",
    "mean_setup_latency",
    "p99_setup_latency",
    "unfinished",
)


def throughput_rows(batch: BatchResult) -> Dict[str, List[Dict[str, float]]]:
    """Per-policy load-curve rows (ascending rate, replicate seeds averaged).

    Accepts any ``throughput``-mode batch; each row carries the
    :data:`CURVE_COLUMNS` metrics.
    """
    rows: Dict[str, List[Dict[str, float]]] = {}
    policies: List[str] = []
    rates: List[float] = []
    for result in batch.results:
        if result.cell.policy not in policies:
            policies.append(result.cell.policy)
        if result.cell.rate not in rates:
            rates.append(result.cell.rate)
    for policy in policies:
        policy_rows: List[Dict[str, float]] = []
        for rate in sorted(rates):
            cells = batch.select(policy=policy, rate=rate)
            if not cells:
                continue
            row = {
                column: sum(c.metrics[column] for c in cells) / len(cells)
                for column in CURVE_COLUMNS
                if column in cells[0].metrics
            }
            row["rate"] = rate
            policy_rows.append(row)
        rows[policy] = policy_rows
    return rows


def is_monotone_nondecreasing(
    values: Sequence[float], *, tolerance: float = 0.1
) -> bool:
    """True iff the sequence never drops by more than ``tolerance`` (relative).

    Each value is compared against the running maximum, so a noisy plateau
    passes while a genuine collapse does not.
    """
    running_max = float("-inf")
    for value in values:
        if running_max > 0 and value < running_max * (1.0 - tolerance):
            return False
        running_max = max(running_max, value)
    return True


def flattens(
    offered: Sequence[float],
    accepted: Sequence[float],
    *,
    threshold: float = 0.25,
) -> bool:
    """True iff the curve's tail no longer tracks the offered load.

    Below saturation, each extra unit of offered load yields roughly one
    extra unit of accepted throughput (the zero-load efficiency,
    ``accepted[0] / offered[0]``).  A saturated curve has flattened: the
    marginal efficiency over the last segment drops under ``threshold``
    times the zero-load efficiency.
    """
    if len(offered) != len(accepted) or len(offered) < 3:
        return False
    if offered[0] <= 0 or offered[-1] <= offered[-2]:
        return False
    base_efficiency = accepted[0] / offered[0]
    if base_efficiency <= 0:
        return False
    marginal = (accepted[-1] - accepted[-2]) / (offered[-1] - offered[-2])
    return marginal < threshold * base_efficiency
