"""Measuring and predicting information-construction convergence.

The paper's headline qualitative claim is that the limited-global
information "can be distributed quickly": the three constructions converge
in a number of rounds that grows with the *block size*, not with the mesh
size (except for the boundary propagation, which must reach the mesh
surface).  This module measures ``a`` (block construction), ``b``
(identification) and ``c`` (boundary construction) for parametric
configurations and provides the simple closed-form expectations used as a
sanity check in the convergence experiments:

* ``a``  — proportional to the block's longest edge (disabled status must
  propagate across the block);
* ``b``  — proportional to the block's half-perimeter (corner-to-corner
  travel plus the back-propagation over the adjacency frame);
* ``c``  — bounded by the longest run from a block face to the mesh surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.block_construction import build_blocks
from repro.core.distribution import distribute_information_with_report
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh


@dataclass(frozen=True)
class ConvergenceMeasurement:
    """Measured convergence rounds for one fault configuration."""

    mesh_shape: Tuple[int, ...]
    block_extents: Tuple[Region, ...]

    #: Rounds of block construction until the labeling stabilized (``a``).
    labeling_rounds: int

    #: Rounds of the identification constructions (``b``).
    identification_rounds: int

    #: Rounds of the boundary constructions (``c``).
    boundary_rounds: int

    @property
    def total_rounds(self) -> int:
        """``a + b + c``."""
        return self.labeling_rounds + self.identification_rounds + self.boundary_rounds

    def steps(self, lam: int) -> int:
        """Steps needed at ``λ`` rounds per step."""
        return -(-self.total_rounds // max(lam, 1))


def measure_convergence(
    mesh: Mesh, faults: Sequence[Sequence[int]]
) -> ConvergenceMeasurement:
    """Label, identify and distribute for ``faults`` and report round counts."""
    result = build_blocks(mesh, faults)
    _, report = distribute_information_with_report(mesh, result.state)
    return ConvergenceMeasurement(
        mesh_shape=mesh.shape,
        block_extents=tuple(sorted((b.extent for b in result.blocks), key=lambda r: r.lo)),
        labeling_rounds=result.rounds,
        identification_rounds=report.identification_rounds,
        boundary_rounds=report.boundary_rounds,
    )


def expected_labeling_rounds(extent: Region) -> int:
    """Closed-form expectation for ``a``: about the block's longest edge.

    Disabling propagates one hop per round from the faults that seed the
    block towards its farthest member, so the worst case is the longest edge
    plus a constant.
    """
    return extent.max_edge + 1


def expected_identification_rounds(extent: Region) -> int:
    """Closed-form expectation for ``b``: about twice the half-perimeter.

    The identification wave travels from the initialization corner to the
    opposite corner of the adjacency frame (half-perimeter of the expanded
    extent) and the identified record travels back over the frame.
    """
    half_perimeter = sum(s + 1 for s in extent.shape)
    return 2 * half_perimeter


def expected_boundary_rounds(mesh: Mesh, extent: Region) -> int:
    """Closed-form expectation for ``c``: longest face-to-surface run.

    Each boundary walker travels in a straight line from the block's
    adjacent surface to the outmost surface of the mesh, so the propagation
    finishes after the longest such run.
    """
    longest = 0
    for dim in range(extent.n_dims):
        low_run = extent.lo[dim]           # from the low face to coordinate 0
        high_run = mesh.shape[dim] - 1 - extent.hi[dim]
        longest = max(longest, low_run, high_run)
    return longest
