"""repro — limited-global fault information model for dynamic routing in n-D meshes.

Reproduction of Jiang & Wu, *A Limited-Global Fault Information Model for
Dynamic Routing in n-D Meshes*, Proc. 18th IPDPS, 2004.

The public API re-exports the pieces most users need:

* the mesh substrate (:class:`Mesh`, :class:`Region`, :class:`Direction`);
* the fault model (:class:`NodeStatus`, :class:`DynamicFaultSchedule`);
* the limited-global information model (block construction, identification,
  boundary construction, :class:`InformationState`);
* fault-information-based PCS routing (:class:`RoutingPolicy`,
  :func:`route_offline`) and the router registry unifying every policy and
  baseline (:func:`resolve_router`, :func:`available_routers`);
* the step-synchronous simulator (:class:`Simulator`,
  :class:`SimulationConfig`) implementing the paper's execution model;
* the opt-in observability layer (:class:`StepRecorder`,
  :class:`PhaseProfiler`, :mod:`repro.obs`) — per-step time series, phase
  timing and run telemetry, all zero-cost when not attached.

Quickstart::

    from repro import Mesh, build_blocks, distribute_information, route_offline

    mesh = Mesh.cube(10, 3)
    result = build_blocks(mesh, [(3, 5, 4), (4, 5, 4), (5, 5, 3), (3, 6, 3)])
    info = distribute_information(mesh, result.state)
    route = route_offline(info, source=(0, 0, 0), destination=(9, 9, 9))
    print(route.outcome, route.hops, route.detours)
"""

from repro.core import (
    BlockConstructionResult,
    BoundaryInfo,
    BoundaryProtocol,
    DirectionClass,
    FaultyBlock,
    IdentificationProtocol,
    IdentificationResult,
    InformationState,
    LabelingState,
    ProbeHeader,
    RouteOutcome,
    RouteResult,
    RoutingPolicy,
    build_blocks,
    compute_boundaries,
    extract_blocks,
    is_safe_source,
    minimal_path_exists,
    oracle_identify,
    route_offline,
    run_block_construction,
)
from repro.backend import default_backend, resolve_backend
from repro.core.distribution import distribute_information
from repro.core.routing import RoutingProbe
from repro.faults import (
    DynamicFaultSchedule,
    FaultEvent,
    FaultEventKind,
    NodeStatus,
    dynamic_schedule,
    uniform_random_faults,
)
from repro.mesh import Direction, Mesh, Region
from repro.obs import PhaseProfiler, StepRecorder
from repro.routing import (
    Router,
    available_routers,
    register_router,
    resolve_router,
    route_with,
)
from repro.simulator import SimulationConfig, SimulationResult, Simulator

__version__ = "0.7.0"

__all__ = [
    "BlockConstructionResult",
    "BoundaryInfo",
    "BoundaryProtocol",
    "Direction",
    "DirectionClass",
    "DynamicFaultSchedule",
    "FaultEvent",
    "FaultEventKind",
    "FaultyBlock",
    "IdentificationProtocol",
    "IdentificationResult",
    "InformationState",
    "LabelingState",
    "Mesh",
    "NodeStatus",
    "PhaseProfiler",
    "ProbeHeader",
    "Region",
    "RouteOutcome",
    "RouteResult",
    "Router",
    "RoutingPolicy",
    "RoutingProbe",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "StepRecorder",
    "__version__",
    "available_routers",
    "build_blocks",
    "compute_boundaries",
    "default_backend",
    "distribute_information",
    "dynamic_schedule",
    "extract_blocks",
    "is_safe_source",
    "minimal_path_exists",
    "oracle_identify",
    "register_router",
    "resolve_backend",
    "resolve_router",
    "route_offline",
    "route_with",
    "run_block_construction",
    "uniform_random_faults",
]
