"""Figure 6 — propagation of the identified block information.

After the identification forms the block record at the opposite corner, it
is propagated back to all adjacent nodes, edge nodes and corners of the
block, which then triggers boundary construction (the reactive model skips
nodes that already hold the record).  The bench measures the distribution
coverage and the reactive-skip behaviour, and times the full
identification + boundary pipeline.
"""

from _common import print_table

from repro.core.block_construction import build_blocks
from repro.core.distribution import distribute_information_with_report
from repro.core.identification import IdentificationProtocol
from repro.core.state import InformationState
from repro.workloads.scenarios import FIGURE1_EXTENT, FIGURE1_FAULTS, figure1_scenario


def test_fig6_information_distribution(benchmark):
    scenario = figure1_scenario()
    mesh = scenario.mesh
    labeling = build_blocks(mesh, FIGURE1_FAULTS).state
    block = build_blocks(mesh, FIGURE1_FAULTS).blocks[0]

    info, report = benchmark(distribute_information_with_report, mesh, labeling)

    frame = set(block.frame_nodes(mesh))
    frame_with_record = sum(1 for n in frame if info.has_block_info(n, FIGURE1_EXTENT))
    holders = info.nodes_holding_information()

    # Reactive model: re-running the identification against the already
    # informed state delivers no new record.
    protocol = IdentificationProtocol(info, block)
    protocol.run()
    new_records = sum(
        1 for n in frame if len(info.blocks_known_at(n)) > 1
    )

    print_table(
        "Figure 6: distribution of the identified block information",
        ["quantity", "paper", "measured"],
        [
            ("frame nodes holding the record", "all adjacent/edge/corner nodes", f"{frame_with_record}/{len(frame)}"),
            ("identification rounds b_i", "O(block perimeter)", report.identification_rounds),
            ("boundary rounds c_i", "<= distance to mesh surface", report.boundary_rounds),
            ("nodes holding any information", "limited (near the block)", f"{len(holders)}/{mesh.size}"),
            ("duplicate records after re-propagation", "0 (reactive model)", new_records),
        ],
    )

    assert frame_with_record == len(frame)
    assert len(holders) < mesh.size // 2
    assert new_records == 0
