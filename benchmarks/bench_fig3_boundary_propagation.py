"""Figure 3 — boundary propagation around a block and merging into a second block.

Figure 3(a)-(c): the boundary for a surface starts from the edges of the
opposite adjacent surface and propagates away from the block until the
outmost surface of the mesh.  Figure 3(d): when it intersects another block
it merges into that block's boundary.  The bench reproduces both and times
the boundary construction.
"""

from _common import print_table

from repro.core.block_construction import build_blocks
from repro.core.boundary import BoundaryProtocol, compute_boundaries
from repro.core.state import InformationState
from repro.workloads.scenarios import figure1_scenario, two_block_scenario


def test_fig3_single_block_boundary(benchmark):
    scenario = figure1_scenario()
    mesh = scenario.mesh
    result = build_blocks(mesh, scenario.schedule.initial_faults)
    block = result.blocks[0]

    def construct():
        info = InformationState(mesh=mesh, labeling=result.state)
        protocol = BoundaryProtocol(info)
        protocol.seed_block(block)
        rounds = protocol.run()
        return protocol, rounds

    protocol, rounds = benchmark(construct)
    informed = protocol.informed

    reached_surface = sum(1 for node in informed if mesh.on_outmost_surface(node))
    print_table(
        "Figure 3(a)-(c): boundary of the Figure-1 block",
        ["quantity", "paper", "measured"],
        [
            ("propagation direction", "away from the block", "away from the block"),
            ("boundary rounds c_i", "<= distance to mesh surface", rounds),
            ("boundary nodes", "walls of the dangerous prisms", len(informed)),
            ("nodes on the outmost surface reached", ">= 1", reached_surface),
        ],
    )
    assert rounds <= mesh.diameter
    assert reached_surface > 0


def test_fig3d_boundary_merging(benchmark):
    scenario = two_block_scenario()
    mesh = scenario.mesh
    result = build_blocks(mesh, scenario.schedule.initial_faults)
    blocks = {b.extent: b for b in result.blocks}
    block_a = blocks[scenario.expected_extents[0]]
    block_b = blocks[scenario.expected_extents[1]]

    informed = benchmark(compute_boundaries, mesh, [block_a])

    beyond_b = sum(
        1
        for node, infos in informed.items()
        if node[1] < block_b.extent.lo[1]
        and any(i.extent == block_a.extent for i in infos)
    )
    on_b_surface = sum(
        1
        for node, infos in informed.items()
        if node[1] == block_b.extent.hi[1] + 1
        and any(i.extent == block_a.extent for i in infos)
    )
    print_table(
        "Figure 3(d): block A's boundary merging into block B's boundary",
        ["quantity", "paper", "measured"],
        [
            ("A-info on B's facing surface", "merges into B's surface", on_b_surface),
            ("A-info beyond B (continued boundary)", "continues past B", beyond_b),
        ],
    )
    assert on_b_surface > 0
    assert beyond_b > 0
