"""Struct-of-arrays probe engine + stacked multi-cell sweep benchmarks.

Two comparisons, both parity-gated before anything is timed:

* **Probe table vs per-object probes** — the contended high-load workload of
  ``bench_throughput_saturation`` (full transpose batch, static faults,
  circuit contention on a 12x12 mesh) run once with probes living as rows of
  :class:`~repro.core.probe_table.ProbeTable` (the default when eligible)
  and once with the table disabled, falling back to the scalar
  :class:`~repro.core.routing.RoutingProbe` objects that remain the parity
  oracle.
* **Stacked vs serial sweep** — one same-shape simulate grid (8x8 transpose,
  circuit contention, seeds as replicates) executed cell-by-cell by the
  serial :func:`~repro.experiments.run_batch` loop and in lockstep by
  ``engine="stacked"``, which joins every cell's probes onto one shared
  table so each simulation step classifies all cells' probes in a single
  vectorized pass.

The timed units keep the sweep at 12 cells so the CI trajectory point stays
cheap; ``test_probe_speedup_table`` prints the headline 48-cell ratio the
acceptance criteria quote (informational, wall-clock of one warm run each).
"""

import time

import numpy as np
from _common import print_table

from repro.experiments import ExperimentSpec, run_batch
from repro.faults.injection import uniform_random_faults
from repro.faults.schedule import DynamicFaultSchedule
from repro.mesh.topology import Mesh
from repro.simulator.engine import SimulationConfig, Simulator
from repro.workloads.traffic import to_traffic, transpose_pairs


def _contended_run(table: bool):
    """One contended steady-state run; ``table=False`` forces the scalar
    per-object probe path (the oracle the probe table is held to)."""
    mesh = Mesh.cube(12, 2)
    rng = np.random.default_rng(7)
    faults = uniform_random_faults(mesh, 6, rng, margin=1)
    schedule = DynamicFaultSchedule.static(faults)
    fault_set = set(faults)
    pairs = [
        (s, d)
        for s, d in transpose_pairs(mesh)
        if s not in fault_set and d not in fault_set
    ]
    traffic = to_traffic(pairs, start_time=0, spacing=0, tag="bench", flits=32)
    sim = Simulator(
        mesh,
        schedule=schedule,
        traffic=traffic,
        config=SimulationConfig(router="limited-global", contention=True),
    )
    if not table:
        sim._table = None
    return sim.run().stats


def _fingerprint(stats):
    """Summary plus per-message outcome/path — the byte-identity the parity
    gates hold every compared configuration to."""
    return (
        stats.summary(),
        [
            (m.message.source, m.message.destination, m.result.outcome,
             tuple(m.result.path))
            for m in stats.messages
        ],
    )


def _sweep_spec(n_cells: int) -> ExperimentSpec:
    """A same-shape contended grid: one stacked group of ``n_cells`` cells."""
    return ExperimentSpec(
        name="stacked-bench",
        mode="simulate",
        mesh_shapes=((8, 8),),
        policies=("limited-global",),
        scenarios=("transpose",),
        fault_counts=(1,),
        fault_intervals=(4,),
        lams=(2,),
        traffic_sizes=(28,),
        seeds=tuple(range(n_cells)),
        contention=True,
        flits=(32,),
    )


def test_probe_table_parity_contended():
    """Parity gate: table rows and scalar probe objects are byte-identical."""
    assert _fingerprint(_contended_run(True)) == _fingerprint(_contended_run(False))


def test_stacked_sweep_parity_json():
    """Parity gate: stacked and serial sweeps export identical JSON."""
    spec = _sweep_spec(8)
    assert (
        run_batch(spec, engine="stacked").to_json()
        == run_batch(spec, engine="serial").to_json()
    )


def test_bench_probe_table_step(benchmark):
    """Contended step loop, probes as flat probe-table columns."""
    stats = benchmark(lambda: _contended_run(True))
    print(
        f"\nprobe table:     {stats.steps} steps, "
        f"{len(stats.messages)} messages, delivery {stats.delivery_rate:.2f}"
    )


def test_bench_probe_object_step(benchmark):
    """Contended step loop, per-object RoutingProbe reference path."""
    stats = benchmark(lambda: _contended_run(False))
    print(
        f"\nprobe objects:   {stats.steps} steps, "
        f"{len(stats.messages)} messages, delivery {stats.delivery_rate:.2f}"
    )


def test_bench_sweep_stacked(benchmark):
    """12-cell same-shape sweep stepped in lockstep on one shared table."""
    spec = _sweep_spec(12)
    batch = benchmark(lambda: run_batch(spec, engine="stacked"))
    print(f"\nstacked sweep: {len(batch.results)} cells")


def test_bench_sweep_serial(benchmark):
    """The same 12-cell sweep, one cell at a time (single process)."""
    spec = _sweep_spec(12)
    batch = benchmark(lambda: run_batch(spec, engine="serial"))
    print(f"\nserial sweep:  {len(batch.results)} cells")


def test_probe_speedup_table():
    """Print the headline probe-engine ratios (informational, one warm run)."""
    timings = {}
    for name, run in (("objects", lambda: _contended_run(False)),
                      ("table", lambda: _contended_run(True))):
        run()  # warm caches
        start = time.perf_counter()
        stats = run()
        timings[name] = time.perf_counter() - start
    spec = _sweep_spec(48)
    sweeps = {}
    for name, run in (("serial", lambda: run_batch(spec, engine="serial")),
                      ("stacked", lambda: run_batch(spec, engine="stacked"))):
        run()  # warm caches
        start = time.perf_counter()
        run()
        sweeps[name] = time.perf_counter() - start
    print_table(
        "Contended step loop: per-object probes vs probe table (one run, warm)",
        ["steps", "messages", "objects ms", "table ms", "speedup"],
        [
            (
                stats.steps,
                len(stats.messages),
                f"{timings['objects'] * 1e3:.1f}",
                f"{timings['table'] * 1e3:.1f}",
                f"{timings['objects'] / timings['table']:.1f}x",
            )
        ],
    )
    print_table(
        "48-cell same-shape sweep: serial vs stacked engine (one run, warm)",
        ["cells", "serial ms", "stacked ms", "speedup"],
        [
            (
                spec.cell_count,
                f"{sweeps['serial'] * 1e3:.1f}",
                f"{sweeps['stacked'] * 1e3:.1f}",
                f"{sweeps['serial'] / sweeps['stacked']:.1f}x",
            )
        ],
    )
