"""Labeling-round cost under fault churn: scalar loop vs vectorized engine.

The steady-state routing hot path was removed by per-node batched stepping
and the stable-labeling skip (PR 3); what remains expensive on large meshes
is the labeling itself *while faults churn* — every fault or recovery event
re-runs synchronous rounds of Algorithm 1 until the blocks re-stabilize.
This benchmark replays a deterministic churn history (initial fault set,
then interleaved recoveries and fresh faults, re-converging after every
event) on a large 2-D mesh (32x32) and a large 3-D mesh (16x16x16), once
through the pure-Python scalar rounds and once through the numpy stencil
engine.  A parity gate asserts the two replays are byte-identical before
anything is timed; the acceptance bar is vectorized >= 3x on the 32x32
churn.

Run with ``--benchmark-json`` to record a ``BENCH_labeling.json``
trajectory point (see benchmarks/baselines/).
"""

import numpy as np
from _common import print_table

from repro.backend import SCALAR, VECTOR
from repro.core.block_construction import LabelingState, run_block_construction
from repro.faults.injection import uniform_random_faults
from repro.mesh.topology import Mesh


def _churn_history(shape, n_faults, n_events, seed):
    """Deterministic churn: initial faults plus alternating recover/fault events."""
    mesh = Mesh(shape)
    rng = np.random.default_rng(seed)
    initial = uniform_random_faults(mesh, n_faults, rng, margin=1)
    events = []
    alive = list(initial)
    for i in range(n_events):
        if i % 2 == 0 and alive:
            victim = alive.pop(int(rng.integers(0, len(alive))))
            events.append(("recover", victim))
        else:
            fresh = uniform_random_faults(
                mesh, 1, rng, margin=1, exclude=alive + [n for _, n in events]
            )[0]
            alive.append(fresh)
            events.append(("fault", fresh))
    return mesh, initial, events


def _replay(mesh, initial, events, backend):
    """Converge the initial set, then re-converge after every churn event."""
    state = LabelingState.from_faults(mesh, initial)
    total_rounds = run_block_construction(state, backend=backend).rounds
    for kind, node in events:
        if kind == "recover":
            if state.status(node).value == "faulty":
                state.recover(node)
        else:
            state.make_faulty(node)
        total_rounds += run_block_construction(state, backend=backend).rounds
    return state, total_rounds


MESH_2D = _churn_history((32, 32), n_faults=40, n_events=24, seed=3)
MESH_3D = _churn_history((16, 16, 16), n_faults=60, n_events=24, seed=5)


def test_churn_parity_2d():
    """Parity gate for the timed 32x32 comparison below."""
    mesh, initial, events = MESH_2D
    scalar_state, scalar_rounds = _replay(mesh, initial, events, SCALAR)
    vector_state, vector_rounds = _replay(mesh, initial, events, VECTOR)
    assert scalar_rounds == vector_rounds
    assert np.array_equal(scalar_state.codes, vector_state.codes)
    assert scalar_state.non_enabled_nodes() == vector_state.non_enabled_nodes()


def test_churn_parity_3d():
    """Parity gate for the timed 16x16x16 comparison below."""
    mesh, initial, events = MESH_3D
    scalar_state, scalar_rounds = _replay(mesh, initial, events, SCALAR)
    vector_state, vector_rounds = _replay(mesh, initial, events, VECTOR)
    assert scalar_rounds == vector_rounds
    assert np.array_equal(scalar_state.codes, vector_state.codes)


def test_bench_labeling_churn_32x32_vector(benchmark):
    mesh, initial, events = MESH_2D
    _, rounds = benchmark(lambda: _replay(mesh, initial, events, VECTOR))
    print(f"\n32x32 vector churn: {rounds} labeling rounds over {len(events)} events")


def test_bench_labeling_churn_32x32_scalar(benchmark):
    mesh, initial, events = MESH_2D
    _, rounds = benchmark(lambda: _replay(mesh, initial, events, SCALAR))
    print(f"\n32x32 scalar churn: {rounds} labeling rounds over {len(events)} events")


def test_bench_labeling_churn_16x16x16_vector(benchmark):
    mesh, initial, events = MESH_3D
    _, rounds = benchmark(lambda: _replay(mesh, initial, events, VECTOR))
    print(f"\n16^3 vector churn: {rounds} labeling rounds over {len(events)} events")


def test_bench_labeling_churn_16x16x16_scalar(benchmark):
    mesh, initial, events = MESH_3D
    _, rounds = benchmark(lambda: _replay(mesh, initial, events, SCALAR))
    print(f"\n16^3 scalar churn: {rounds} labeling rounds over {len(events)} events")


def test_speedup_table():
    """Print the headline scalar/vector wall-clock ratio (informational)."""
    import time

    rows = []
    for label, (mesh, initial, events) in (("32x32", MESH_2D), ("16x16x16", MESH_3D)):
        timings = {}
        for backend in (SCALAR, VECTOR):
            _replay(mesh, initial, events, backend)  # warm caches
            start = time.perf_counter()
            _, rounds = _replay(mesh, initial, events, backend)
            timings[backend] = time.perf_counter() - start
        rows.append(
            (
                label,
                rounds,
                f"{timings[SCALAR] * 1e3:.1f}",
                f"{timings[VECTOR] * 1e3:.1f}",
                f"{timings[SCALAR] / timings[VECTOR]:.1f}x",
            )
        )
    print_table(
        "Labeling churn: scalar vs vectorized (one replay, warm)",
        ["mesh", "rounds", "scalar ms", "vector ms", "speedup"],
        rows,
    )
