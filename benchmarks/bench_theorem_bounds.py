"""Theorems 3-5 — detour bounds under dynamic faults.

The bench runs the step-synchronous simulator with controlled fault
intervals d_i, measures the detours of long-haul messages that are in flight
while the faults occur, and compares them with the analytical maximum of
Theorem 4 (k * (e_max + a_max), with k from the interval bound).  The paper
expects measured detours to stay well below the bound — the bound certifies
termination, the measurements show graceful degradation.
"""

from _common import print_table

from repro.analysis.detour_bounds import (
    DetourBoundParameters,
    theorem4_interval_bound,
    theorem4_max_detours,
)
from repro.faults.injection import dynamic_schedule
from repro.mesh.topology import Mesh
from repro.simulator.engine import SimulationConfig, Simulator
from repro.simulator.traffic import TrafficMessage


def _run(interval, lam=4, radix=12):
    mesh = Mesh.cube(radix, 3)
    source, destination = (0, 0, 0), (radix - 1, radix - 1, radix - 1)
    # A cluster of dynamic faults appears across the diagonal path.
    faults = [(5, 5, 5), (6, 6, 5), (6, 5, 6), (7, 7, 7)]
    schedule = dynamic_schedule(faults, start_time=4, interval=interval)
    sim = Simulator(
        mesh,
        schedule=schedule,
        traffic=[TrafficMessage(source=source, destination=destination)],
        config=SimulationConfig(lam=lam),
    )
    result = sim.run()
    record = result.stats.messages[0]
    a_values = [c.labeling_rounds for c in result.stats.convergence] or [1]
    e_max = 3  # the four faults span at most a 3-hop edge once coalesced
    params = DetourBoundParameters(
        distance=mesh.distance(source, destination),
        start_time=0,
        last_fault_time=0,
        intervals=[interval] * len(faults),
        labeling_rounds=[max(a_values)] * len(faults),
        e_max=e_max,
    )
    return record, params


def test_theorem_bounds_vs_measurement(benchmark):
    record, params = benchmark(_run, 20)

    rows = []
    for interval in (10, 20, 40):
        rec, par = _run(interval)
        assert rec.delivered
        bound_k = theorem4_interval_bound(par)
        bound_detours = theorem4_max_detours(par)
        assert rec.detours is not None and rec.detours <= bound_detours
        rows.append(
            (
                interval,
                rec.result.min_distance,
                rec.result.hops,
                rec.detours,
                bound_k,
                bound_detours,
            )
        )
    print_table(
        "Theorems 3-5: measured detours vs analytical bound (12^3 mesh, 4 dynamic faults)",
        ["d_i", "D(s,d)", "hops", "measured detours", "bound k (Thm 4)", "max detours bound"],
        rows,
    )
    assert record.delivered
