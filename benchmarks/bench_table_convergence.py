"""Table C1 — convergence of the three constructions (a_i, b_i, c_i).

The companion evaluations support the claim that "fault information can be
distributed quickly": the labeling and identification rounds scale with the
block size, and only the boundary propagation sees the mesh radius.  The
bench sweeps the block edge length, the mesh radix and the mesh dimension,
printing the measured rounds next to the closed-form expectations.
"""

from _common import print_table

from repro.analysis.convergence import (
    expected_boundary_rounds,
    expected_identification_rounds,
    measure_convergence,
)
from repro.workloads.scenarios import parametric_block_scenario


def _row(radix, n_dims, edge):
    scenario = parametric_block_scenario(radix, n_dims, edge=edge)
    extent = scenario.expected_extents[0]
    measurement = measure_convergence(scenario.mesh, list(extent.iter_points()))
    return (
        f"{radix}^{n_dims}",
        edge,
        measurement.labeling_rounds,
        measurement.identification_rounds,
        f"~{expected_identification_rounds(extent)}",
        measurement.boundary_rounds,
        f"~{expected_boundary_rounds(scenario.mesh, extent)}",
        measurement.total_rounds,
        measurement.steps(lam=2),
    )


def test_table_convergence_vs_block_and_mesh(benchmark):
    # Benchmark the mid-size configuration; print the whole sweep.
    scenario = parametric_block_scenario(12, 3, edge=3)
    extent = scenario.expected_extents[0]
    benchmark(measure_convergence, scenario.mesh, list(extent.iter_points()))

    rows = []
    for edge in (1, 2, 3, 4, 5):
        rows.append(_row(12, 3, edge))
    for radix in (10, 14, 18):
        rows.append(_row(radix, 3, 3))
    for n_dims, radix in ((2, 16), (4, 8)):
        rows.append(_row(radix, n_dims, 2))

    print_table(
        "Table C1: convergence rounds vs block size, mesh radix and dimension",
        ["mesh", "block edge", "a", "b", "b expected", "c", "c expected", "a+b+c", "steps (λ=2)"],
        rows,
    )

    # Shape checks: b grows with the block edge, and is unchanged by the mesh
    # radix; c grows with the mesh radix.
    b_by_edge = [r[3] for r in rows[:5]]
    assert b_by_edge == sorted(b_by_edge) and b_by_edge[0] < b_by_edge[-1]
    b_by_radix = [r[3] for r in rows[5:8]]
    assert max(b_by_radix) - min(b_by_radix) <= 2
    c_by_radix = [r[5] for r in rows[5:8]]
    assert c_by_radix == sorted(c_by_radix)
