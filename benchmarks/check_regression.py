"""CI perf-regression gate over committed pytest-benchmark baselines.

Compares a freshly produced pytest-benchmark JSON (``--current``, e.g. the
``--benchmark-json`` output of a CI bench run) against a committed baseline
(``--baseline``, see benchmarks/baselines/): for every benchmark present in
*both* files, the ratio of mean times ``current / baseline`` must stay
within ``--tolerance`` (default 1.5x, generous enough to absorb shared-CI
runner noise while still catching the 2x-and-up regressions that matter).

Benchmarks present in only one file are reported but never fail the gate —
baselines are a trajectory, and new benchmarks land before their baseline
point does.  An *empty* intersection fails loudly: it means the gate is
comparing the wrong files, which silently passing would hide.

Exit status: 0 when every compared benchmark is within tolerance, 1 on any
regression (or empty intersection), 2 on unreadable/invalid input.

Usage (exactly what .github/workflows/ci.yml runs)::

    python benchmarks/check_regression.py \
        --baseline benchmarks/baselines/BENCH_labeling.json \
        --current BENCH_labeling_ci.json [--tolerance 1.5]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple


def load_means(path: str) -> Dict[str, float]:
    """Benchmark name -> mean seconds, from a pytest-benchmark JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    try:
        benchmarks = payload["benchmarks"]
        means = {b["name"]: float(b["stats"]["mean"]) for b in benchmarks}
    except (KeyError, TypeError) as exc:
        raise ValueError(f"{path} is not a pytest-benchmark JSON file: {exc}")
    if not means:
        raise ValueError(f"{path} contains no benchmarks")
    return means


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    tolerance: float,
) -> Tuple[List[Tuple[str, float, float, float]], List[str], List[str]]:
    """Compare overlapping benchmarks; returns (rows, regressions, uncompared).

    ``rows`` is ``(name, baseline mean, current mean, ratio)`` for every
    benchmark in both files, ``regressions`` the names whose ratio exceeds
    ``tolerance``, ``uncompared`` the names present in only one file.
    """
    rows: List[Tuple[str, float, float, float]] = []
    regressions: List[str] = []
    for name in sorted(baseline.keys() & current.keys()):
        ratio = current[name] / baseline[name]
        rows.append((name, baseline[name], current[name], ratio))
        if ratio > tolerance:
            regressions.append(name)
    uncompared = sorted(baseline.keys() ^ current.keys())
    return rows, regressions, uncompared


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmark mean times regress past a tolerance "
        "against a committed pytest-benchmark baseline."
    )
    parser.add_argument(
        "--baseline", required=True,
        help="committed baseline JSON (benchmarks/baselines/BENCH_*.json)",
    )
    parser.add_argument(
        "--current", required=True,
        help="freshly produced pytest-benchmark JSON to gate",
    )
    parser.add_argument(
        "--tolerance", type=float, default=1.5,
        help="max allowed current/baseline mean-time ratio (default 1.5)",
    )
    args = parser.parse_args(argv)
    if args.tolerance <= 0:
        parser.error("--tolerance must be positive")

    try:
        baseline = load_means(args.baseline)
        current = load_means(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"check_regression: {exc}", file=sys.stderr)
        return 2

    rows, regressions, uncompared = compare(baseline, current, args.tolerance)

    width = max((len(name) for name, *_ in rows), default=10)
    print(f"perf gate: {args.current} vs {args.baseline} (tolerance {args.tolerance}x)")
    for name, base, cur, ratio in rows:
        flag = "REGRESSION" if name in regressions else "ok"
        print(
            f"  {name:<{width}}  {base * 1e3:>9.2f}ms -> {cur * 1e3:>9.2f}ms  "
            f"x{ratio:5.2f}  {flag}"
        )
    for name in uncompared:
        side = "baseline only" if name in baseline else "current only"
        print(f"  {name}: {side}, not compared")

    if not rows:
        print(
            "check_regression: no overlapping benchmarks between the two files "
            "- wrong baseline?",
            file=sys.stderr,
        )
        return 1
    if regressions:
        print(
            f"check_regression: {len(regressions)} benchmark(s) regressed past "
            f"{args.tolerance}x: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print(f"check_regression: {len(rows)} benchmark(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
