"""Table N1 — behaviour across mesh dimensionality (n = 2, 3, 4).

The paper's point of generalizing from the 2-D [9] and 3-D [10] models is
that the same constructions work for every n.  The bench runs the identical
experiment (one interior block of edge 2, plus scattered faults, a batch of
long-haul messages) in 2-D, 3-D and 4-D meshes of comparable node count and
reports convergence rounds, detours and information footprint per
dimension.
"""

import numpy as np
from _common import print_table

from repro.analysis.convergence import measure_convergence
from repro.analysis.metrics import compare_policies, memory_footprint_row
from repro.core.block_construction import build_blocks
from repro.faults.injection import uniform_random_faults
from repro.mesh.topology import Mesh
from repro.workloads.scenarios import parametric_block_scenario
from repro.workloads.traffic import random_pairs

CONFIGS = (
    (2, 16),   # 256 nodes
    (3, 8),    # 512 nodes
    (4, 5),    # 625 nodes
)


def _row(n_dims, radix, seed=5):
    rng = np.random.default_rng(seed)
    scenario = parametric_block_scenario(radix, n_dims, edge=2)
    mesh = scenario.mesh
    block_faults = list(scenario.expected_extents[0].iter_points())
    extra = uniform_random_faults(mesh, 2, rng, exclude=block_faults)
    faults = block_faults + extra

    measurement = measure_convergence(mesh, faults)
    labeling = build_blocks(mesh, faults).state
    pairs = random_pairs(
        mesh, 16, rng, min_distance=max(2, mesh.diameter // 2),
        exclude=list(labeling.block_nodes),
    )
    comparison = compare_policies(mesh, labeling, pairs, include_static_block=False)
    memory = memory_footprint_row(mesh, labeling)
    detours = comparison.row("mean_detours")
    return (
        f"{radix}^{n_dims}",
        mesh.size,
        measurement.labeling_rounds,
        measurement.identification_rounds,
        measurement.boundary_rounds,
        f"{detours['limited-global']:.2f}",
        f"{detours['no-information']:.2f}",
        f"{memory['reduction_factor']:.1f}x",
    )


def test_table_dimension_scaling(benchmark):
    benchmark(_row, 3, 8)

    rows = [_row(n_dims, radix) for n_dims, radix in CONFIGS]
    print_table(
        "Table N1: the same model across mesh dimensionality",
        ["mesh", "nodes", "a", "b", "c", "detours (limited)", "detours (no info)", "memory reduction"],
        rows,
    )

    # Shape: the constructions converge in every dimension, and the
    # limited-global routing never does worse than the information-free one.
    for row in rows:
        assert row[2] >= 0 and row[3] > 0
        assert float(row[5]) <= float(row[6]) + 1e-9
