"""Figure 5 — the 3-level identification process (Algorithm 2, phases 1-3).

The identification starts at an n-level corner, travels the block's edges
and sections, and forms the block information at the opposite corner.  The
bench reproduces the corner-to-corner flow for the paper's initialization
corner C(xmax, ymin, zmax) = (6,4,5) and sweeps the block edge length to
show the identification rounds b_i grow with the block, not the mesh.
"""

from _common import print_series, print_table

from repro.core.block_construction import build_blocks
from repro.core.identification import IdentificationProtocol
from repro.core.state import InformationState
from repro.workloads.scenarios import FIGURE1_EXTENT, FIGURE1_FAULTS, figure1_scenario, parametric_block_scenario


def test_fig5_identification_process(benchmark):
    scenario = figure1_scenario()
    mesh = scenario.mesh
    labeling = build_blocks(mesh, FIGURE1_FAULTS).state
    block = build_blocks(mesh, FIGURE1_FAULTS).blocks[0]

    def identify():
        info = InformationState(mesh=mesh, labeling=labeling)
        protocol = IdentificationProtocol(info, block, initialization_corner=(6, 4, 5))
        return protocol, protocol.run()

    protocol, result = benchmark(identify)

    print_table(
        "Figure 5: identification of block [3:5, 5:6, 3:4]",
        ["quantity", "paper", "measured"],
        [
            ("initialization corner", "C(xmax, ymin, zmax) = (6,4,5)", str(result.initialization_corner)),
            ("opposite corner", "C'(xmin, ymax, zmin) = (2,7,2)", str(result.opposite_corner)),
            ("identified extent", "[3:5, 5:6, 3:4]", str(result.extent)),
            ("stable", "yes", result.stable),
            ("identification rounds (phases 1-3)", "O(block perimeter)", result.identification_rounds),
        ],
    )
    assert result.stable
    assert result.extent == FIGURE1_EXTENT
    assert result.opposite_corner == (2, 7, 2)

    # Sweep: rounds vs block edge (fixed mesh) and vs mesh radix (fixed block).
    edge_series = []
    for edge in (1, 2, 3, 4, 5):
        sweep = parametric_block_scenario(12, 3, edge=edge)
        sweep_labeling = build_blocks(
            sweep.mesh, sweep.schedule.initial_faults
        ).state
        info = InformationState(mesh=sweep.mesh, labeling=sweep_labeling)
        sweep_block = build_blocks(sweep.mesh, sweep.schedule.initial_faults).blocks[0]
        edge_series.append(IdentificationProtocol(info, sweep_block).run().total_rounds)
    print_series(
        "Figure 5 sweep: identification rounds b_i vs block edge (12^3 mesh)",
        {"edge 1..5": edge_series},
    )
    assert edge_series == sorted(edge_series)
