"""Decision-path cost in isolation: scalar loop vs vectorized batch engine.

The contended step loop's dominant cost is the per-probe Algorithm-3
direction classification (``classify_directions`` via
``decision_candidates``).  This benchmark measures exactly that path,
detached from the simulator: a static fault configuration is built and its
information fully distributed, a population of in-flight probe headers is
grown by stepping real probes to staggered depths (so the headers carry
realistic stacks, used-direction sets and incoming directions), and then
one *decision round* — every probe classifying its candidate directions
once — is timed through the scalar reference loop and through the
vectorized batch engine (``DecisionCache.batch_candidates``).

A parity gate asserts the two classifications are byte-identical (same
classes, same directions, same order, same ``None`` rule-1 results) before
anything is timed.  Run with ``--benchmark-json`` to record a
``BENCH_decision.json`` trajectory point (see benchmarks/baselines/ and
benchmarks/check_regression.py).
"""

from functools import lru_cache

import numpy as np
from _common import print_table

from repro.backend import SCALAR, VECTOR
from repro.core.block_construction import build_blocks
from repro.core.distribution import distribute_information
from repro.core.routing import DecisionCache, RoutingPolicy, RoutingProbe, decision_candidates
from repro.faults.injection import uniform_random_faults
from repro.mesh.topology import Mesh
from repro.workloads.traffic import random_pairs


def _probe_population(shape, n_faults, n_probes, seed):
    """Static distributed information plus a population of in-flight headers.

    Probes are stepped to staggered depths (0..diameter hops) against the
    stabilized information, so the resulting headers exercise every decision
    situation: fresh at the source, mid-walk with an incoming direction,
    used-direction sets at revisited nodes, and backtracking walks around
    blocks.
    """
    mesh = Mesh(shape)
    rng = np.random.default_rng(seed)
    faults = uniform_random_faults(mesh, n_faults, rng, margin=1)
    labeling = build_blocks(mesh, faults).state
    info = distribute_information(mesh, labeling)
    policy = RoutingPolicy.limited_global()
    pairs = random_pairs(
        mesh, n_probes, rng,
        min_distance=max(2, mesh.diameter // 2),
        exclude=list(labeling.block_nodes),
    )
    cache = DecisionCache(info, policy, backend=SCALAR)
    headers = []
    for i, (src, dst) in enumerate(pairs):
        probe = RoutingProbe(mesh, src, dst, policy=policy)
        for _ in range(i % (mesh.diameter + 1)):
            if probe.done:
                break
            probe.step(info, decision_cache=cache)
        if not probe.done:
            headers.append(probe.header)
    return info, policy, headers


# Lazily built (and then shared) so --collect-only costs nothing.
@lru_cache(maxsize=None)
def _population(kind):
    if kind == "2d":
        return _probe_population((16, 16), n_faults=10, n_probes=256, seed=11)
    return _probe_population((10, 10, 10), n_faults=14, n_probes=256, seed=13)


def _decision_round(info, policy, headers, backend):
    """Classify every header's candidates once through ``backend``."""
    cache = DecisionCache(info, policy, backend=backend)
    return cache.batch_candidates(headers)


def _scalar_reference(info, policy, headers):
    """The per-header scalar loop the vector engine must match exactly."""
    cache = DecisionCache(info, policy, backend=SCALAR)
    return [
        decision_candidates(info, h, policy=policy, cache=cache) for h in headers
    ]


def test_decision_parity_2d():
    """Parity gate for the timed 16x16 comparison below."""
    info, policy, headers = _population("2d")
    assert _decision_round(info, policy, headers, VECTOR) == _scalar_reference(
        info, policy, headers
    )


def test_decision_parity_3d():
    """Parity gate for the timed 10^3 comparison below."""
    info, policy, headers = _population("3d")
    assert _decision_round(info, policy, headers, VECTOR) == _scalar_reference(
        info, policy, headers
    )


def test_bench_decision_batch_16x16_vector(benchmark):
    info, policy, headers = _population("2d")
    cache = DecisionCache(info, policy, backend=VECTOR)
    out = benchmark(lambda: cache.batch_candidates(headers))
    print(f"\n16x16 vector batch: {len(out)} probes classified per round")


def test_bench_decision_batch_16x16_scalar(benchmark):
    info, policy, headers = _population("2d")
    cache = DecisionCache(info, policy, backend=SCALAR)
    out = benchmark(lambda: cache.batch_candidates(headers))
    print(f"\n16x16 scalar loop:  {len(out)} probes classified per round")


def test_bench_decision_batch_10x10x10_vector(benchmark):
    info, policy, headers = _population("3d")
    cache = DecisionCache(info, policy, backend=VECTOR)
    out = benchmark(lambda: cache.batch_candidates(headers))
    print(f"\n10^3 vector batch: {len(out)} probes classified per round")


def test_bench_decision_batch_10x10x10_scalar(benchmark):
    info, policy, headers = _population("3d")
    cache = DecisionCache(info, policy, backend=SCALAR)
    out = benchmark(lambda: cache.batch_candidates(headers))
    print(f"\n10^3 scalar loop:  {len(out)} probes classified per round")


def test_speedup_table():
    """Print the headline scalar/vector decision-round ratio (informational)."""
    import time

    rows = []
    for label, (info, policy, headers) in (
        ("16x16", _population("2d")),
        ("10x10x10", _population("3d")),
    ):
        timings = {}
        for backend in (SCALAR, VECTOR):
            cache = DecisionCache(info, policy, backend=backend)
            cache.batch_candidates(headers)  # warm tables
            start = time.perf_counter()
            for _ in range(10):
                cache.batch_candidates(headers)
            timings[backend] = (time.perf_counter() - start) / 10
        rows.append(
            (
                label,
                len(headers),
                f"{timings[SCALAR] * 1e3:.2f}",
                f"{timings[VECTOR] * 1e3:.2f}",
                f"{timings[SCALAR] / timings[VECTOR]:.1f}x",
            )
        )
    print_table(
        "Decision round: scalar loop vs vectorized batch (warm, mean of 10)",
        ["mesh", "probes", "scalar ms", "vector ms", "speedup"],
        rows,
    )
