"""Figure 1 — faulty block formation in a 3-D mesh.

The paper's Figure 1(a): faults (3,5,4), (4,5,4), (5,5,3), (3,6,3) in a 3-D
mesh coalesce into the block [3:5, 5:6, 3:4]; Figure 1(b): its six adjacent
surfaces.  The bench reproduces the block and its surfaces and times the
block construction (Algorithm 1) on the paper's mesh size.
"""

from _common import print_table

from repro.core.block_construction import build_blocks
from repro.mesh.regions import Region
from repro.workloads.scenarios import FIGURE1_EXTENT, FIGURE1_FAULTS, figure1_scenario


def test_fig1_block_construction(benchmark):
    scenario = figure1_scenario()
    mesh = scenario.mesh

    result = benchmark(build_blocks, mesh, FIGURE1_FAULTS)

    assert [b.extent for b in result.blocks] == [FIGURE1_EXTENT]
    block = result.blocks[0]
    surfaces = block.adjacent_surfaces(mesh)

    print_table(
        "Figure 1(a): faulty block from the four faults",
        ["quantity", "paper", "measured"],
        [
            ("block extent", "[3:5, 5:6, 3:4]", str(block)),
            ("member nodes", "12 (rectangular)", len(block.nodes)),
            ("faulty / disabled", "4 / 8", f"{len(block.faulty_nodes)} / {len(block.disabled_nodes)}"),
            ("labeling rounds a_i", "O(block edge)", result.rounds),
        ],
    )
    print_table(
        "Figure 1(b): adjacent surfaces of the block",
        ["surface", "extent (measured)"],
        [(f"S{i}", f"{s.lo}..{s.hi}") for i, s in sorted(surfaces.items())],
    )
    assert len(surfaces) == 6
    assert surfaces[1] == Region((3, 4, 3), (5, 4, 4))
