"""Figure 2 — the recursive corner structure of a block (Definition 2).

The paper highlights the 3-level corner (6,4,5) of block [3:5, 5:6, 3:4],
its three 3-level edge neighbors (5,4,5), (6,5,5), (6,4,4), and that each
edge node has two neighbors adjacent to the block.  The bench reproduces
these classifications and times the frame/level computation.
"""

from _common import print_table

from repro.core.block_construction import build_blocks
from repro.workloads.scenarios import (
    FIGURE1_FAULTS,
    FIGURE2_CORNER,
    FIGURE2_EDGE_NEIGHBORS,
    figure1_scenario,
)


def test_fig2_corner_levels(benchmark):
    scenario = figure1_scenario()
    mesh = scenario.mesh
    block = build_blocks(mesh, FIGURE1_FAULTS).blocks[0]

    def classify_frame():
        return {
            1: block.adjacent_nodes(mesh),
            2: block.edge_nodes(mesh),
            3: block.corners(mesh),
        }

    levels = benchmark(classify_frame)

    rows = [
        ("3-level corner (6,4,5)", "3-level corner", f"level {block.level_of(FIGURE2_CORNER)}"),
    ]
    for node in FIGURE2_EDGE_NEIGHBORS:
        rows.append((f"edge neighbor {node}", "3-level edge node", f"level {block.level_of(node)}"))
    adjacent_of_edge = sorted(
        n for n in mesh.neighbors((5, 4, 5)) if block.level_of(n) == 1
    )
    rows.append(
        ("(5,4,5) adjacent neighbors", "(5,5,5), (5,4,4)", str(adjacent_of_edge))
    )
    rows.append(("n-level corners", "8", len(levels[3])))
    rows.append(("n-level edge nodes", "perimeter edges", len(levels[2])))
    rows.append(("adjacent nodes", "faces", len(levels[1])))

    print_table("Figure 2: corner/edge structure of the block", ["item", "paper", "measured"], rows)

    assert block.level_of(FIGURE2_CORNER) == 3
    assert all(block.level_of(n) == 2 for n in FIGURE2_EDGE_NEIGHBORS)
    assert sorted(block.edge_neighbors_of_corner(FIGURE2_CORNER, mesh)) == sorted(
        FIGURE2_EDGE_NEIGHBORS
    )
    assert len(levels[3]) == 8
