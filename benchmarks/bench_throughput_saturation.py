"""Open-loop saturation curves + the contended step-loop speedups.

Three things are measured here:

* **Saturation curve** — the accepted-throughput / latency curve of the
  limited-global policy under open-loop transpose traffic on an 8x8 mesh
  (the headline table of the throughput subsystem);
* **Batched stepping** — the simulator's per-node decision batching
  (``SimulationConfig(batch_by_node=True)``, the default) against the
  historic per-probe loop, on a high-load contended steady-state workload
  where many probes are in flight at once;
* **Vectorized decision engine** — the same contended workload with probe
  decisions classified by the batched numpy engine
  (``backend="vector"``, the default) against the scalar reference
  classification (``backend="scalar"``, the parity oracle).  The
  acceptance bar is vector >= 2x on this contended timed section.

Every timed comparison is parity-gated first: the compared paths are
asserted to produce byte-identical statistics and per-message paths.
"""

import numpy as np
from _common import print_table

from repro.backend import SCALAR, VECTOR
from repro.faults.injection import uniform_random_faults
from repro.faults.schedule import DynamicFaultSchedule
from repro.mesh.topology import Mesh
from repro.simulator.engine import SimulationConfig, Simulator
from repro.throughput import MeasurementWindows, run_throughput_point
from repro.workloads.traffic import to_traffic, transpose_pairs


def _high_load_run(batch_by_node: bool, backend=None):
    """One contended steady-state run: full transpose batch, static faults."""
    mesh = Mesh.cube(12, 2)
    rng = np.random.default_rng(7)
    faults = uniform_random_faults(mesh, 6, rng, margin=1)
    schedule = DynamicFaultSchedule.static(faults)
    fault_set = set(faults)
    pairs = [
        (s, d)
        for s, d in transpose_pairs(mesh)
        if s not in fault_set and d not in fault_set
    ]
    traffic = to_traffic(pairs, start_time=0, spacing=0, tag="bench", flits=32)
    sim = Simulator(
        mesh,
        schedule=schedule,
        traffic=traffic,
        config=SimulationConfig(
            router="limited-global",
            contention=True,
            batch_by_node=batch_by_node,
            backend=backend,
        ),
    )
    return sim.run().stats


def _fingerprint(stats):
    """Summary plus per-message outcome/path — the byte-identity the parity
    gates hold every compared configuration to."""
    return (
        stats.summary(),
        [
            (m.message.source, m.message.destination, m.result.outcome,
             tuple(m.result.path))
            for m in stats.messages
        ],
    )


def test_batched_matches_per_probe_loop():
    """Parity gate for the batched-stepping comparison below."""
    assert _fingerprint(_high_load_run(True)) == _fingerprint(_high_load_run(False))


def test_decision_parity_vector_vs_scalar():
    """Parity gate for the decision-engine comparison below."""
    assert _fingerprint(_high_load_run(True, VECTOR)) == _fingerprint(
        _high_load_run(True, SCALAR)
    )


def test_bench_step_batched(benchmark):
    stats = benchmark(lambda: _high_load_run(True))
    print(
        f"\nbatched stepping: {stats.steps} steps, "
        f"{len(stats.messages)} messages, delivery {stats.delivery_rate:.2f}"
    )


def test_bench_step_per_probe(benchmark):
    stats = benchmark(lambda: _high_load_run(False))
    print(
        f"\nper-probe loop:   {stats.steps} steps, "
        f"{len(stats.messages)} messages, delivery {stats.delivery_rate:.2f}"
    )


def test_bench_step_decision_vector(benchmark):
    """Contended step loop, probe decisions batched through the numpy engine."""
    stats = benchmark(lambda: _high_load_run(True, VECTOR))
    print(
        f"\nvector decisions: {stats.steps} steps, "
        f"{len(stats.messages)} messages, delivery {stats.delivery_rate:.2f}"
    )


def test_bench_step_decision_scalar(benchmark):
    """Contended step loop, scalar reference classification per probe."""
    stats = benchmark(lambda: _high_load_run(True, SCALAR))
    print(
        f"\nscalar decisions: {stats.steps} steps, "
        f"{len(stats.messages)} messages, delivery {stats.delivery_rate:.2f}"
    )


def test_decision_speedup_table():
    """Print the headline decision-engine wall-clock ratio (informational)."""
    import time

    timings = {}
    for backend in (SCALAR, VECTOR):
        _high_load_run(True, backend)  # warm caches
        start = time.perf_counter()
        stats = _high_load_run(True, backend)
        timings[backend] = time.perf_counter() - start
    print_table(
        "Contended step loop: scalar vs vectorized decision engine (one run, warm)",
        ["steps", "messages", "scalar ms", "vector ms", "speedup"],
        [
            (
                stats.steps,
                len(stats.messages),
                f"{timings[SCALAR] * 1e3:.1f}",
                f"{timings[VECTOR] * 1e3:.1f}",
                f"{timings[SCALAR] / timings[VECTOR]:.1f}x",
            )
        ],
    )


def test_bench_saturation_curve(benchmark):
    """The headline load curve (also printed as a table)."""
    windows = MeasurementWindows(warmup=30, measure=120, drain=240)
    rates = (0.002, 0.005, 0.01, 0.02, 0.04, 0.08)

    def sweep():
        return [
            run_throughput_point(
                (8, 8), "limited-global", "transpose", rate,
                faults=4, seed=0, windows=windows,
            )
            for rate in rates
        ]

    results = benchmark(sweep)
    print_table(
        "Open-loop saturation: limited-global, transpose, 8x8 mesh, 4 faults",
        ["rate", "offered", "accepted", "delivery", "mean lat", "p99 lat", "backlog"],
        [
            (
                f"{r.rate:.3f}",
                f"{r.offered_load:.4f}",
                f"{r.accepted_throughput:.4f}",
                f"{r.delivery_rate:.2f}",
                f"{r.mean_setup_latency:.1f}",
                f"{r.p99_setup_latency:.0f}",
                r.unfinished,
            )
            for r in results
        ],
    )
