"""Open-loop saturation curves + the per-node batched-stepping speedup.

Two things are measured here:

* **Saturation curve** — the accepted-throughput / latency curve of the
  limited-global policy under open-loop transpose traffic on an 8x8 mesh
  (the headline table of the throughput subsystem);
* **Batched stepping** — the simulator's per-node decision batching
  (``SimulationConfig(batch_by_node=True)``, the default) against the
  historic per-probe loop, on a high-load contended steady-state workload
  where many probes are in flight at once.  The two paths are asserted to
  produce identical statistics before timing them.
"""

import numpy as np
from _common import print_table

from repro.faults.injection import uniform_random_faults
from repro.faults.schedule import DynamicFaultSchedule
from repro.mesh.topology import Mesh
from repro.simulator.engine import SimulationConfig, Simulator
from repro.throughput import MeasurementWindows, run_throughput_point
from repro.workloads.traffic import to_traffic, transpose_pairs


def _high_load_run(batch_by_node: bool):
    """One contended steady-state run: full transpose batch, static faults."""
    mesh = Mesh.cube(12, 2)
    rng = np.random.default_rng(7)
    faults = uniform_random_faults(mesh, 6, rng, margin=1)
    schedule = DynamicFaultSchedule.static(faults)
    fault_set = set(faults)
    pairs = [
        (s, d)
        for s, d in transpose_pairs(mesh)
        if s not in fault_set and d not in fault_set
    ]
    traffic = to_traffic(pairs, start_time=0, spacing=0, tag="bench", flits=32)
    sim = Simulator(
        mesh,
        schedule=schedule,
        traffic=traffic,
        config=SimulationConfig(
            router="limited-global", contention=True, batch_by_node=batch_by_node
        ),
    )
    return sim.run().stats


def test_batched_matches_per_probe_loop():
    """Parity gate for the timed comparison below."""
    assert _high_load_run(True).summary() == _high_load_run(False).summary()


def test_bench_step_batched(benchmark):
    stats = benchmark(lambda: _high_load_run(True))
    print(
        f"\nbatched stepping: {stats.steps} steps, "
        f"{len(stats.messages)} messages, delivery {stats.delivery_rate:.2f}"
    )


def test_bench_step_per_probe(benchmark):
    stats = benchmark(lambda: _high_load_run(False))
    print(
        f"\nper-probe loop:   {stats.steps} steps, "
        f"{len(stats.messages)} messages, delivery {stats.delivery_rate:.2f}"
    )


def test_bench_saturation_curve(benchmark):
    """The headline load curve (also printed as a table)."""
    windows = MeasurementWindows(warmup=30, measure=120, drain=240)
    rates = (0.002, 0.005, 0.01, 0.02, 0.04, 0.08)

    def sweep():
        return [
            run_throughput_point(
                (8, 8), "limited-global", "transpose", rate,
                faults=4, seed=0, windows=windows,
            )
            for rate in rates
        ]

    results = benchmark(sweep)
    print_table(
        "Open-loop saturation: limited-global, transpose, 8x8 mesh, 4 faults",
        ["rate", "offered", "accepted", "delivery", "mean lat", "p99 lat", "backlog"],
        [
            (
                f"{r.rate:.3f}",
                f"{r.offered_load:.4f}",
                f"{r.accepted_throughput:.4f}",
                f"{r.delivery_rate:.2f}",
                f"{r.mean_setup_latency:.1f}",
                f"{r.p99_setup_latency:.0f}",
                r.unfinished,
            )
            for r in results
        ],
    )
