"""Benchmark-suite configuration.

Makes the ``benchmarks`` directory importable as a package root so the
shared ``_common`` helpers can be imported by every bench module regardless
of how pytest was invoked.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
