"""Table D1 — detours vs number of faults, across routing policies.

The companion evaluations (and this paper's motivation) compare the
limited-global model against routing without fault information and against
idealized global information: the limited-global routing should track the
global-information ideal closely while the information-free routing
degrades much faster as faults accumulate.  The static faulty-block
predecessor (adjacent-only information, Wu ICPP 2000) sits in between,
which isolates the contribution of boundary propagation (the ablation
called out in DESIGN.md).
"""

import numpy as np
from _common import print_table

from repro.analysis.metrics import compare_policies
from repro.core.block_construction import build_blocks
from repro.faults.injection import clustered_faults, uniform_random_faults
from repro.mesh.topology import Mesh
from repro.workloads.traffic import random_pairs

POLICIES = ("limited-global", "static-block", "no-information", "global-information")


def _one_row(mesh, fault_count, seed, messages=20):
    rng = np.random.default_rng(seed)
    # Seed the cluster at the mesh centre so large clusters always fit in the
    # interior regardless of the random seed.
    centre = tuple(s // 2 for s in mesh.shape)
    faults = clustered_faults(
        mesh, fault_count // 2, rng, spread=3, seed_node=centre
    )
    faults += uniform_random_faults(mesh, fault_count - len(faults), rng, exclude=faults)
    labeling = build_blocks(mesh, faults).state
    pairs = random_pairs(
        mesh,
        messages,
        rng,
        min_distance=mesh.diameter // 2,
        exclude=list(labeling.block_nodes),
    )
    return compare_policies(mesh, labeling, pairs)


def test_table_detours_2d(benchmark):
    mesh = Mesh.cube(16, 2)
    comparison = benchmark(_one_row, mesh, 16, seed=11)

    rows = []
    collected = {}
    for fault_count in (4, 8, 16, 24, 32):
        result = _one_row(mesh, fault_count, seed=100 + fault_count)
        collected[fault_count] = result
        detours = result.row("mean_detours")
        rows.append(
            (fault_count, *[f"{detours[p]:.2f}" for p in POLICIES])
        )
    print_table(
        "Table D1a: mean detours vs fault count (16x16 mesh)",
        ["faults", *POLICIES],
        rows,
    )

    # Shape assertions: global <= limited-global <= no-information on average.
    for result in collected.values():
        detours = result.row("mean_detours")
        assert detours["global-information"] <= detours["limited-global"] + 1e-9
        assert detours["limited-global"] <= detours["no-information"] + 1e-9
        assert all(s.delivery_rate == 1.0 for s in result.summaries.values())


def test_table_detours_3d(benchmark):
    mesh = Mesh.cube(10, 3)
    comparison = benchmark(_one_row, mesh, 12, seed=21, messages=12)

    rows = []
    for fault_count in (8, 16, 32):
        result = _one_row(mesh, fault_count, seed=200 + fault_count, messages=16)
        detours = result.row("mean_detours")
        backtracks = result.row("mean_backtracks")
        rows.append(
            (
                fault_count,
                *[f"{detours[p]:.2f}" for p in POLICIES],
                f"{backtracks['no-information']:.2f}",
            )
        )
    print_table(
        "Table D1b: mean detours vs fault count (10^3 mesh)",
        ["faults", *POLICIES, "no-info backtracks"],
        rows,
    )
    detours = comparison.row("mean_detours")
    assert detours["limited-global"] <= detours["no-information"] + 1e-9
