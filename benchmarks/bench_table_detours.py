"""Table D1 — detours vs number of faults, across routing policies.

The companion evaluations (and this paper's motivation) compare the
limited-global model against routing without fault information and against
idealized global information: the limited-global routing should track the
global-information ideal closely while the information-free routing
degrades much faster as faults accumulate.  The static faulty-block
predecessor (adjacent-only information, Wu ICPP 2000) sits in between,
which isolates the contribution of boundary propagation (the ablation
called out in DESIGN.md).

The tables route through :mod:`repro.experiments`: each row set is one
offline-mode :class:`ExperimentSpec` over the fault-count axis, every
policy column sharing the same per-cell fault layout and traffic.  The
timed section measures the routing hot path over a prebuilt configuration.
"""

import numpy as np
from _common import print_table

from repro.analysis.metrics import compare_policies
from repro.core.block_construction import build_blocks
from repro.experiments import ExperimentSpec, run_batch
from repro.faults.injection import clustered_faults, uniform_random_faults
from repro.mesh.topology import Mesh
from repro.workloads.traffic import random_pairs

POLICIES = ("limited-global", "static-block", "no-information", "global-information")


def _one_row(mesh, fault_count, seed, messages=20):
    rng = np.random.default_rng(seed)
    # Seed the cluster at the mesh centre so large clusters always fit in the
    # interior regardless of the random seed.
    centre = tuple(s // 2 for s in mesh.shape)
    faults = clustered_faults(
        mesh, fault_count // 2, rng, spread=3, seed_node=centre
    )
    faults += uniform_random_faults(mesh, fault_count - len(faults), rng, exclude=faults)
    labeling = build_blocks(mesh, faults).state
    pairs = random_pairs(
        mesh,
        messages,
        rng,
        min_distance=mesh.diameter // 2,
        exclude=list(labeling.block_nodes),
    )
    return compare_policies(mesh, labeling, pairs)


def _detour_batch(name, shape, fault_counts, messages):
    spec = ExperimentSpec(
        name=name,
        mode="offline",
        mesh_shapes=(shape,),
        policies=POLICIES,
        fault_counts=fault_counts,
        traffic_sizes=(messages,),
    )
    return spec, run_batch(spec)


def test_table_detours_2d(benchmark):
    mesh = Mesh.cube(16, 2)
    benchmark(_one_row, mesh, 16, seed=11)

    spec, batch = _detour_batch("table-d1a", (16, 16), (4, 8, 16, 24, 32), 20)
    detours = batch.pivot("mean_detours", rows="faults")
    delivery = batch.pivot("delivery_rate", rows="faults")
    rows = [
        (count, *[f"{detours[count][p]:.2f}" for p in POLICIES])
        for count in spec.fault_counts
    ]
    print_table(
        "Table D1a: mean detours vs fault count (16x16 mesh)",
        ["faults", *POLICIES],
        rows,
    )

    # Shape assertions: global <= limited-global <= no-information on average.
    for count in spec.fault_counts:
        assert detours[count]["global-information"] <= detours[count]["limited-global"] + 1e-9
        assert detours[count]["limited-global"] <= detours[count]["no-information"] + 1e-9
        assert all(rate == 1.0 for rate in delivery[count].values())


def test_table_detours_3d(benchmark):
    mesh = Mesh.cube(10, 3)
    comparison = benchmark(_one_row, mesh, 12, seed=21, messages=12)

    spec, batch = _detour_batch("table-d1b", (10, 10, 10), (8, 16, 32), 16)
    detours = batch.pivot("mean_detours", rows="faults")
    backtracks = batch.pivot("mean_backtracks", rows="faults")
    rows = [
        (
            count,
            *[f"{detours[count][p]:.2f}" for p in POLICIES],
            f"{backtracks[count]['no-information']:.2f}",
        )
        for count in spec.fault_counts
    ]
    print_table(
        "Table D1b: mean detours vs fault count (10^3 mesh)",
        ["faults", *POLICIES, "no-info backtracks"],
        rows,
    )
    timed = comparison.row("mean_detours")
    assert timed["limited-global"] <= timed["no-information"] + 1e-9
    for count in spec.fault_counts:
        assert detours[count]["global-information"] <= detours[count]["limited-global"] + 1e-9
