"""Ablation — which parts of the information model earn their keep.

DESIGN.md calls out two routing-side design choices for ablation:

* **boundary information vs adjacent-only information** — the difference
  between this paper and Wu's static faulty-block model: without boundary
  propagation a probe only learns about a block when it is already next to
  it;
* **spare-direction ordering** — Algorithm 3 ranks spare directions that
  run along a known block above other spares; disabling the distinction
  shows how much the ordering contributes when probes walk around blocks.

The ablation table routes through :mod:`repro.experiments`: one offline
:class:`ExperimentSpec` whose policy axis enumerates the variants, every
variant sharing the same per-cell fault layout and traffic.  The timed
section measures the limited-global routing hot path over one prebuilt
stabilized configuration (the target of the prism/constraint caching).
"""

import numpy as np
from _common import print_table

from repro.core.block_construction import build_blocks
from repro.core.distribution import distribute_information
from repro.core.routing import RoutingPolicy, route_offline
from repro.experiments import ExperimentSpec, run_batch
from repro.faults.injection import clustered_faults, uniform_random_faults
from repro.mesh.topology import Mesh
from repro.workloads.traffic import random_pairs

#: Ablation variants, most informed first (runner policy name -> label).
VARIANTS = {
    "limited-global": "full model (block + boundary)",
    "static-block": "no boundary info (adjacent only)",
    "boundary-only": "no block info (boundary only)",
    "no-disabled-avoid": "no disabled-avoidance",
    "no-information": "no information at all",
}


def _setup(seed, fault_count=20, radix=16):
    rng = np.random.default_rng(seed)
    mesh = Mesh.cube(radix, 2)
    centre = tuple(s // 2 for s in mesh.shape)
    faults = clustered_faults(mesh, fault_count // 2, rng, spread=3, seed_node=centre)
    faults += uniform_random_faults(mesh, fault_count - len(faults), rng, exclude=faults)
    labeling = build_blocks(mesh, faults).state
    pairs = random_pairs(
        mesh,
        24,
        rng,
        min_distance=mesh.diameter // 2,
        exclude=list(labeling.block_nodes),
    )
    return mesh, labeling, pairs


def _mean_detours(info, pairs, policy):
    detours = []
    for source, destination in pairs:
        route = route_offline(info, source, destination, policy=policy)
        assert route.delivered
        detours.append(route.detours)
    return float(np.mean(detours))


def test_ablation_information_and_ordering(benchmark):
    mesh, labeling, pairs = _setup(seed=3)
    full_info = distribute_information(mesh, labeling)

    benchmark(_mean_detours, full_info, pairs, RoutingPolicy.limited_global())

    spec = ExperimentSpec(
        name="ablation",
        mode="offline",
        mesh_shapes=((16, 16),),
        policies=tuple(VARIANTS),
        fault_counts=(20,),
        traffic_sizes=(24,),
    )
    batch = run_batch(spec)
    measured = {
        VARIANTS[policy]: mean
        for policy, mean in batch.pivot("mean_detours", rows="faults")[20].items()
    }
    print_table(
        "Ablation: mean detours per routing variant (16x16 mesh, 20 faults)",
        ["variant", "mean detours"],
        [(name, f"{mean:.2f}") for name, mean in measured.items()],
    )

    # The full model must not be worse than dropping all information (the
    # relative order of the partial variants is configuration-dependent),
    # and every variant must still deliver everything offline.
    assert measured["full model (block + boundary)"] <= measured["no information at all"] + 1e-9
    delivery = batch.pivot("delivery_rate", rows="faults")[20]
    assert all(rate == 1.0 for rate in delivery.values())
