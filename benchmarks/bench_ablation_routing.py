"""Ablation — which parts of the information model earn their keep.

DESIGN.md calls out two routing-side design choices for ablation:

* **boundary information vs adjacent-only information** — the difference
  between this paper and Wu's static faulty-block model: without boundary
  propagation a probe only learns about a block when it is already next to
  it;
* **spare-direction ordering** — Algorithm 3 ranks spare directions that
  run along a known block above other spares; disabling the distinction
  shows how much the ordering contributes when probes walk around blocks.

The bench routes the same batch of messages under each variant against the
same stabilized fault configurations and prints the resulting detour table.
"""

import numpy as np
from _common import print_table

from repro.baselines.static_block import adjacent_only_information
from repro.core.block_construction import build_blocks
from repro.core.distribution import distribute_information
from repro.core.routing import RoutingPolicy, route_offline
from repro.core.state import InformationState
from repro.faults.injection import clustered_faults, uniform_random_faults
from repro.mesh.topology import Mesh
from repro.workloads.traffic import random_pairs


def _setup(seed, fault_count=20, radix=16):
    rng = np.random.default_rng(seed)
    mesh = Mesh.cube(radix, 2)
    centre = tuple(s // 2 for s in mesh.shape)
    faults = clustered_faults(mesh, fault_count // 2, rng, spread=3, seed_node=centre)
    faults += uniform_random_faults(mesh, fault_count - len(faults), rng, exclude=faults)
    labeling = build_blocks(mesh, faults).state
    pairs = random_pairs(
        mesh,
        24,
        rng,
        min_distance=mesh.diameter // 2,
        exclude=list(labeling.block_nodes),
    )
    return mesh, labeling, pairs


def _mean_detours(info, pairs, policy):
    detours = []
    for source, destination in pairs:
        route = route_offline(info, source, destination, policy=policy)
        assert route.delivered
        detours.append(route.detours)
    return float(np.mean(detours))


def test_ablation_information_and_ordering(benchmark):
    mesh, labeling, pairs = _setup(seed=3)
    full_info = distribute_information(mesh, labeling)
    adjacent_info = adjacent_only_information(mesh, labeling)
    bare_info = InformationState(mesh=mesh, labeling=labeling)

    variants = {
        "full model (block + boundary)": (full_info, RoutingPolicy.limited_global()),
        "no boundary info (adjacent only)": (
            adjacent_info,
            RoutingPolicy(name="adjacent-only", use_boundary_info=False),
        ),
        "no block info (boundary only)": (
            full_info,
            RoutingPolicy(name="boundary-only", use_block_info=False),
        ),
        "no disabled-avoidance": (
            full_info,
            RoutingPolicy(name="no-disabled-avoid", avoid_known_disabled=False),
        ),
        "no information at all": (bare_info, RoutingPolicy.no_information()),
    }

    benchmark(_mean_detours, full_info, pairs, RoutingPolicy.limited_global())

    rows = []
    measured = {}
    for name, (info, policy) in variants.items():
        mean = _mean_detours(info, pairs, policy)
        measured[name] = mean
        rows.append((name, f"{mean:.2f}"))
    print_table(
        "Ablation: mean detours per routing variant (16x16 mesh, 20 faults)",
        ["variant", "mean detours"],
        rows,
    )

    # The full model must not be worse than dropping all information, and
    # dropping everything must be the worst (or tied) variant.
    assert measured["full model (block + boundary)"] <= measured["no information at all"] + 1e-9
    assert max(measured.values()) == measured["no information at all"]
