"""Table M1 — memory footprint of limited-global information vs global tables.

The paper argues that the limited-global model "reduces the memory
requirement to store fault information in the whole network" compared with a
routing table (one entry per faulty block) at every node.  The bench counts
the information cells actually stored for growing fault populations and
mesh sizes.
"""

import numpy as np
from _common import print_table

from repro.analysis.metrics import memory_footprint_row
from repro.core.block_construction import build_blocks
from repro.faults.injection import clustered_faults, uniform_random_faults
from repro.mesh.topology import Mesh


def _row(radix, n_dims, fault_count, seed):
    rng = np.random.default_rng(seed)
    mesh = Mesh.cube(radix, n_dims)
    faults = clustered_faults(mesh, fault_count // 2, rng, spread=2)
    faults += uniform_random_faults(mesh, fault_count - len(faults), rng, exclude=faults)
    labeling = build_blocks(mesh, faults).state
    row = memory_footprint_row(mesh, labeling)
    return (
        f"{radix}^{n_dims}",
        fault_count,
        int(row["blocks"]),
        int(row["limited_global_cells"]),
        int(row["global_table_cells"]),
        f"{row['reduction_factor']:.1f}x",
    )


def test_table_memory_footprint(benchmark):
    benchmark(_row, 12, 3, 12, 7)

    rows = []
    for radix, n_dims in ((16, 2), (12, 3)):
        for fault_count in (4, 8, 16):
            rows.append(_row(radix, n_dims, fault_count, seed=radix * 100 + fault_count))
    print_table(
        "Table M1: information cells stored in the whole network",
        ["mesh", "faults", "blocks", "limited-global cells", "global-table cells", "reduction"],
        rows,
    )

    # The limited-global model must store less than the per-node table in
    # every configuration measured.
    for row in rows:
        assert row[3] < row[4]
