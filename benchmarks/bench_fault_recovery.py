"""Fault-injection-under-load benchmarks: teardown cost and SLO scoring.

Dynamic faults inside the measurement window exercise the expensive new
paths of the robustness work: per-event circuit teardown (every in-flight
probe and delivered circuit crossing the dead node released within the
fault's own step), the re-labeling churn each fault/recovery pair causes,
and the recovery-SLO scoring pass over the recorded per-step series.

Parity is gated before anything is timed: a mid-run fault/recovery run
must produce byte-identical statistics on the scalar object path and the
vectorized :class:`~repro.core.probe_table.ProbeTable` path, and the
windowed throughput measurement under an MTBF workload must emit identical
result rows on both backends.  The timed units stay small (8x8, short
windows) so the CI trajectory point (``BENCH_recovery.json``) is cheap.
"""

import numpy as np

from _common import print_table

from repro.analysis.slo import compute_recovery_slo
from repro.faults.workload import FaultWorkload, mtbf_schedule
from repro.mesh.topology import Mesh
from repro.simulator.engine import SimulationConfig, Simulator
from repro.simulator.traffic import TrafficMessage
from repro.throughput import MeasurementWindows, run_throughput_point
from repro.workloads.traffic import random_pairs

WINDOWS = MeasurementWindows(warmup=32, measure=128, drain=256)


def _faulty_run(backend):
    mesh = Mesh((10, 10))
    workload = FaultWorkload(rate=0.05, repair_after=20, start=4, stop=60)
    schedule = mtbf_schedule(mesh, workload, seed=7)
    rng = np.random.default_rng(5)
    excluded = [e.node for e in schedule.fault_events]
    pairs = random_pairs(mesh, 30, rng, min_distance=4, exclude=excluded)
    traffic = [
        TrafficMessage(source=s, destination=d, start_time=i % 8, flits=32)
        for i, (s, d) in enumerate(pairs)
    ]
    sim = Simulator(
        mesh,
        schedule=schedule,
        traffic=traffic,
        config=SimulationConfig(
            lam=2, router="limited-global", contention=True, backend=backend
        ),
    )
    sim.run()
    return sim


def _fingerprint(sim):
    per_message = tuple(
        (
            record.message.source,
            record.message.destination,
            record.result.outcome.name,
            tuple(record.result.path),
            record.finish_step,
        )
        for record in sim.stats.messages
    )
    return sim.stats.summary(), per_message


def test_fault_teardown_parity():
    """Gate: mid-run fault/recovery is byte-identical across engines."""
    assert _fingerprint(_faulty_run("scalar")) == _fingerprint(_faulty_run("vector"))


def test_throughput_under_faults_parity(monkeypatch):
    """Gate: the measured result row under an MTBF workload is backend-free."""
    rows = {}
    for backend in ("scalar", "vector"):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        rows[backend] = run_throughput_point(
            (8, 8),
            "limited-global",
            "uniform",
            0.02,
            faults=2,
            seed=3,
            fault_rate=0.04,
            repair_after=24,
            windows=WINDOWS,
        ).to_row()
    assert rows["scalar"] == rows["vector"]
    assert rows["vector"]["fault_events"] > 0


def test_bench_faulty_simulation(benchmark):
    """Contended 10x10 run with MTBF faults + repairs (teardown hot path)."""
    sim = benchmark(lambda: _faulty_run(None))
    print(f"\nfault churn: {sim.stats.summary()['fault_changes']:g} fault changes")


def test_bench_throughput_point_under_faults(benchmark):
    """Windowed open-loop measurement with the fault workload + SLO scoring."""
    result = benchmark(
        lambda: run_throughput_point(
            (8, 8),
            "limited-global",
            "uniform",
            0.02,
            faults=2,
            seed=3,
            fault_rate=0.04,
            repair_after=24,
            windows=WINDOWS,
        )
    )
    print(f"\nfault events: {result.fault_events}, slo: {result.slo.summary()}")


def test_bench_slo_scoring(benchmark):
    """Recovery-SLO pass over a long synthetic series (50k steps, 40 events)."""
    rng = np.random.default_rng(0)
    delivered = (2.0 + rng.standard_normal(50_000) * 0.2).clip(min=0.0).tolist()
    dropped = [0.0] * 50_000
    events = []
    for i in range(40):
        t = 1_000 + i * 1_200
        for u in range(t, t + 60):
            delivered[u] = 0.0
        dropped[t] = float(i % 3)
        events.append((t, (i % 8, i % 8)))
    latencies = [(int(t), 10.0 + float(t % 7)) for t in range(0, 50_000, 5)]
    slo = benchmark(
        lambda: compute_recovery_slo(
            delivered, dropped, events, latencies_by_finish=latencies
        )
    )
    assert len(slo.events) == 40
    assert slo.time_to_recover >= 0


def test_recovery_slo_table():
    """Print the per-event SLO table of the canned run (informational)."""
    result = run_throughput_point(
        (8, 8),
        "limited-global",
        "uniform",
        0.02,
        faults=2,
        seed=3,
        fault_rate=0.04,
        repair_after=40,
        windows=MeasurementWindows(warmup=48, measure=192, drain=384),
    )
    assert result.slo is not None
    print_table(
        "recovery SLOs (8x8, rate 0.02, MTBF 1/0.04, MTTR 40)",
        ["t", "node", "baseline", "dip", "ttr", "p99 excursion", "dropped"],
        [
            (
                e.time,
                e.node,
                f"{e.baseline:.2f}",
                f"{e.dip_depth:.0%}",
                e.time_to_recover if e.recovered else "never",
                f"{e.p99_excursion:+.0f}",
                e.fault_dropped,
            )
            for e in result.slo.events
        ],
    )
