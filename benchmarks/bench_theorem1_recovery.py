"""Theorem 1 — fault recovery does not affect optimal routing.

After nodes recover and blocks shrink, a routing that was minimal before the
recovery must stay minimal (the new, smaller boundaries are constructed
before the old ones are deleted).  The bench routes the same safe
source/destination pairs before and after recovery events and checks no pair
gets worse.
"""

import numpy as np
from _common import print_table

from repro.core.block_construction import LabelingState, run_block_construction
from repro.core.distribution import distribute_information
from repro.core.routing import route_offline
from repro.faults.injection import clustered_faults
from repro.mesh.topology import Mesh
from repro.workloads.traffic import random_pairs


def test_theorem1_recovery_preserves_optimality(benchmark):
    rng = np.random.default_rng(31)
    mesh = Mesh.cube(12, 3)
    faults = clustered_faults(mesh, 8, rng, spread=2, seed_node=(6, 6, 6))

    def before_and_after():
        before_state = LabelingState.from_faults(mesh, faults)
        run_block_construction(before_state)
        before_info = distribute_information(mesh, before_state)

        after_state = before_state.copy()
        for fault in faults[: len(faults) // 2]:
            after_state.recover(fault)
        run_block_construction(after_state)
        after_info = distribute_information(mesh, after_state)
        return before_info, after_info

    before_info, after_info = benchmark(before_and_after)

    pairs = random_pairs(
        mesh,
        20,
        rng,
        min_distance=12,
        exclude=list(before_info.labeling.block_nodes) + list(faults),
    )
    rows = []
    regressions = 0
    for source, destination in pairs:
        before = route_offline(before_info, source, destination)
        after = route_offline(after_info, source, destination)
        assert before.delivered and after.delivered
        if after.hops > before.hops:
            regressions += 1
        rows.append((f"{source}->{destination}", before.hops, after.hops))

    print_table(
        "Theorem 1: hops before vs after recovery (same pairs)",
        ["pair", "hops before recovery", "hops after recovery"],
        rows[:10] + [("...", "", "")],
    )
    print(f"pairs that got worse after recovery: {regressions}/{len(pairs)}")
    assert regressions == 0
