"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure or table of the paper (or of the
companion evaluations the paper references) and prints the reproduced
rows/series, so running ``pytest benchmarks/ --benchmark-only -s`` gives the
material recorded in EXPERIMENTS.md while pytest-benchmark captures the
runtime of the reproduced construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print a fixed-width table with a title banner."""
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    line = " | ".join(h.rjust(w) for h, w in zip(headers, widths))
    print(f"\n--- {title} ---")
    print(line)
    print("-" * len(line))
    for row in rows:
        print(" | ".join(c.rjust(w) for c, w in zip(row, widths)))


def print_series(title: str, series: Dict[str, Sequence]) -> None:
    """Print named series (the textual analogue of a figure's curves)."""
    print(f"\n--- {title} ---")
    for name, values in series.items():
        rendered = ", ".join(
            f"{v:.2f}" if isinstance(v, float) else str(v) for v in values
        )
        print(f"{name}: [{rendered}]")
