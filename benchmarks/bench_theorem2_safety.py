"""Theorem 2 — safe sources are routed along minimal paths.

If no block intersects the source-destination bounding box, the routing is
guaranteed a minimal path (as long as no new fault occurs).  The bench
classifies random pairs as safe/unsafe for random fault configurations and
verifies every safe pair is routed with zero detours; unsafe pairs report
their average extra cost for context.
"""

import numpy as np
from _common import print_table

from repro.core.block_construction import build_blocks
from repro.core.distribution import distribute_information
from repro.core.routing import route_offline
from repro.core.safety import is_safe_source
from repro.faults.injection import clustered_faults, uniform_random_faults
from repro.mesh.topology import Mesh
from repro.workloads.traffic import random_pairs


def _experiment(n_dims, radix, fault_count, seed, messages=40):
    rng = np.random.default_rng(seed)
    mesh = Mesh.cube(radix, n_dims)
    faults = clustered_faults(mesh, fault_count // 2, rng, spread=2)
    faults += uniform_random_faults(mesh, fault_count - len(faults), rng, exclude=faults)
    result = build_blocks(mesh, faults)
    info = distribute_information(mesh, result.state)
    pairs = random_pairs(
        mesh,
        messages,
        rng,
        min_distance=max(2, mesh.diameter // 3),
        exclude=list(result.state.block_nodes),
    )
    safe_detours, unsafe_detours = [], []
    for source, destination in pairs:
        route = route_offline(info, source, destination)
        assert route.delivered
        if is_safe_source(source, destination, result.blocks):
            safe_detours.append(route.detours)
        else:
            unsafe_detours.append(route.detours)
    return safe_detours, unsafe_detours


def test_theorem2_safe_sources_minimal(benchmark):
    safe, unsafe = benchmark(_experiment, 2, 14, 10, 17)

    rows = []
    violations = 0
    for n_dims, radix, fault_count, seed in ((2, 14, 10, 17), (2, 14, 20, 18), (3, 10, 12, 19)):
        safe_d, unsafe_d = _experiment(n_dims, radix, fault_count, seed)
        violations += sum(1 for d in safe_d if d != 0)
        rows.append(
            (
                f"{radix}^{n_dims}",
                fault_count,
                len(safe_d),
                max(safe_d, default=0),
                len(unsafe_d),
                f"{np.mean(unsafe_d):.2f}" if unsafe_d else "-",
            )
        )
    print_table(
        "Theorem 2: detours of safe vs unsafe sources",
        ["mesh", "faults", "safe pairs", "max detours (safe)", "unsafe pairs", "mean detours (unsafe)"],
        rows,
    )
    assert violations == 0
    assert all(d == 0 for d in safe)
