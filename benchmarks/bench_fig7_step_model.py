"""Figure 7 — the step/interval execution model and the λ ablation.

Figure 7(a) fixes the actions within a step (fault detection, λ rounds of
information exchange, reception, routing decision, sending); Figure 7(b)
the fault-occurrence intervals d_i.  The bench times one simulation step and
ablates λ: more exchange rounds per step stabilize each fault change in
fewer steps, at the cost of more per-step work.
"""

from _common import print_table

from repro.faults.injection import dynamic_schedule
from repro.mesh.topology import Mesh
from repro.simulator.engine import SimulationConfig, Simulator
from repro.simulator.traffic import TrafficMessage


def _run(lam: int):
    mesh = Mesh.cube(12, 3)
    schedule = dynamic_schedule(
        [(5, 5, 5), (6, 6, 5), (8, 3, 8)], start_time=2, interval=25
    )
    traffic = [TrafficMessage(source=(0, 0, 0), destination=(11, 11, 11))]
    sim = Simulator(
        mesh, schedule=schedule, traffic=traffic, config=SimulationConfig(lam=lam)
    )
    return sim.run()


def test_fig7_step_model_and_lambda_ablation(benchmark):
    mesh = Mesh.cube(12, 3)
    schedule = dynamic_schedule([(5, 5, 5)], start_time=0)
    sim = Simulator(
        mesh,
        schedule=schedule,
        traffic=[TrafficMessage(source=(0, 0, 0), destination=(11, 11, 11))],
        config=SimulationConfig(lam=2),
    )

    benchmark(sim.step)

    rows = []
    results = {}
    for lam in (1, 2, 4, 8):
        result = _run(lam)
        results[lam] = result
        worst = max(
            (c.steps_to_stabilize(lam) for c in result.stats.convergence), default=0
        )
        rows.append(
            (
                lam,
                result.stats.steps,
                result.stats.total_rounds,
                worst,
                f"{result.stats.mean_detours:.2f}",
                f"{result.stats.delivery_rate:.2f}",
            )
        )
    print_table(
        "Figure 7 ablation: rounds per step (λ)",
        ["λ", "steps", "total rounds", "worst steps-to-stabilize", "mean detours", "delivery"],
        rows,
    )

    worst_1 = max(c.steps_to_stabilize(1) for c in results[1].stats.convergence)
    worst_8 = max(c.steps_to_stabilize(8) for c in results[8].stats.convergence)
    assert worst_8 <= worst_1
    assert all(r.stats.delivery_rate == 1.0 for r in results.values())
