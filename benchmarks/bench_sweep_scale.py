"""Sharded + cached sweep execution benchmarks.

Three execution strategies over one contended same-shape sweep grid (8x8
transpose, circuit contention, seeds as replicates — the shape of a load
study and the dominant access pattern a sweep service would see):

* **stacked, single process** — PR 6's engine: every cell on one shared
  :class:`~repro.core.probe_table.ProbeTable`, stepped in lockstep;
* **auto-sharded, 4 workers** — the shard planner splits the group into
  stacked sub-shards dispatched across the persistent process pool
  (``run_batch(engine="auto", workers=4)``, the default composition);
* **warm result cache** — every cell served from the content-addressed
  on-disk cache (:class:`~repro.experiments.cache.ResultCache`); no
  simulation runs at all.

Parity is gated before anything is timed: all engines and cache states
must export byte-identical JSON.  The timed units keep the sweep at 24
cells so the CI trajectory point (``BENCH_sweep.json``) stays cheap;
``test_sweep_scale_table`` prints the headline 96-cell ratios the
acceptance criteria quote (informational, wall-clock of one warm run
each).  Note the multi-worker row only shows a speedup when the host
actually has spare cores — on a single-core container the sharded run
pays dispatch overhead for no concurrency.
"""

import os
import tempfile
import time

from _common import print_table

from repro.experiments import ExperimentSpec, ResultCache, run_batch, shutdown_pool


def _sweep_spec(n_cells: int) -> ExperimentSpec:
    """A contended same-shape grid: one stackable group of ``n_cells``."""
    return ExperimentSpec(
        name="sweep-scale-bench",
        mode="simulate",
        mesh_shapes=((8, 8),),
        policies=("limited-global",),
        scenarios=("transpose",),
        fault_counts=(1,),
        fault_intervals=(4,),
        lams=(2,),
        traffic_sizes=(28,),
        seeds=tuple(range(n_cells)),
        contention=True,
        flits=(32,),
    )


def test_sweep_engines_parity_json():
    """Parity gate: every engine/worker composition exports identical JSON."""
    spec = _sweep_spec(8)
    reference = run_batch(spec, engine="serial").to_json()
    assert run_batch(spec, engine="stacked").to_json() == reference
    assert run_batch(spec, engine="auto", workers=4).to_json() == reference
    assert run_batch(spec, engine="stacked", workers=2).to_json() == reference


def test_sweep_cache_parity_json(tmp_path):
    """Parity gate: cold, warm and mixed cache runs export identical JSON."""
    spec = _sweep_spec(8)
    reference = run_batch(spec, engine="serial").to_json()
    cache = ResultCache(tmp_path)
    assert run_batch(spec, cache=cache).to_json() == reference  # cold
    assert run_batch(spec, cache=cache).to_json() == reference  # warm
    assert cache.stats.hits == spec.cell_count


def test_bench_sweep_stacked_single_process(benchmark):
    """24-cell contended sweep, one lockstep stacked group, one process."""
    spec = _sweep_spec(24)
    batch = benchmark(lambda: run_batch(spec, engine="stacked", workers=1))
    print(f"\nstacked 1-proc: {len(batch.results)} cells")


def test_bench_sweep_auto_sharded(benchmark):
    """The same 24 cells auto-sharded across 4 pool workers."""
    spec = _sweep_spec(24)
    try:
        batch = benchmark(lambda: run_batch(spec, engine="auto", workers=4))
    finally:
        shutdown_pool()
    print(f"\nauto w4: {len(batch.results)} cells (host cores: {os.cpu_count()})")


def test_bench_sweep_warm_cache(benchmark):
    """The same 24 cells served entirely from the warm result cache."""
    spec = _sweep_spec(24)
    with tempfile.TemporaryDirectory() as root:
        run_batch(spec, cache=ResultCache(root))  # prewarm
        batch = benchmark(lambda: run_batch(spec, cache=ResultCache(root)))
    print(f"\nwarm cache: {len(batch.results)} cells")


def test_sweep_scale_table():
    """Print the headline 96-cell ratios (informational, one warm run each)."""
    spec = _sweep_spec(96)
    timings = {}
    with tempfile.TemporaryDirectory() as root:
        cache = ResultCache(root)
        runs = (
            ("stacked-1proc", lambda: run_batch(spec, engine="stacked", workers=1)),
            ("auto-w4-cold", lambda: run_batch(spec, engine="auto", workers=4,
                                               cache=cache)),
            ("warm-cache", lambda: run_batch(spec, engine="auto", workers=4,
                                             cache=cache)),
        )
        exports = {}
        for name, run in runs:
            start = time.perf_counter()
            batch = run()
            timings[name] = time.perf_counter() - start
            exports[name] = batch.to_json()
    shutdown_pool()
    assert len(set(exports.values())) == 1  # byte-identical across the board
    print_table(
        "96-cell contended same-shape sweep: stacked vs sharded vs cached "
        f"(one run each; host cores: {os.cpu_count()})",
        ["cells", "stacked 1p ms", "auto w4 ms", "warm cache ms",
         "shard speedup", "cache speedup"],
        [
            (
                spec.cell_count,
                f"{timings['stacked-1proc'] * 1e3:.0f}",
                f"{timings['auto-w4-cold'] * 1e3:.0f}",
                f"{timings['warm-cache'] * 1e3:.0f}",
                f"{timings['stacked-1proc'] / timings['auto-w4-cold']:.1f}x",
                f"{timings['auto-w4-cold'] / timings['warm-cache']:.0f}x",
            )
        ],
    )
