"""Figure 4 — recovery of a faulty node and re-stabilization (Definition 4).

The paper recovers node (5,5,3) of the Figure-1 block: the clean status
propagates to its disabled neighbors, (3,5,3) stays disabled (two faulty
neighbors in different dimensions) and the blocks re-stabilize to a smaller
configuration.  The bench replays the walkthrough and times the recovery
re-stabilization.
"""

from _common import print_table

from repro.core.block_construction import (
    LabelingState,
    extract_blocks,
    run_block_construction,
)
from repro.faults.status import NodeStatus
from repro.workloads.scenarios import FIGURE1_EXTENT, FIGURE1_FAULTS, figure4_recovery_scenario


def test_fig4_recovery(benchmark):
    scenario = figure4_recovery_scenario()
    mesh = scenario.mesh

    def recover():
        state = LabelingState.from_faults(mesh, FIGURE1_FAULTS)
        run_block_construction(state)
        state.recover((5, 5, 3))
        result = run_block_construction(state)
        return state, result

    state, result = benchmark(recover)
    blocks = extract_blocks(state)

    print_table(
        "Figure 4: recovery of (5,5,3)",
        ["quantity", "paper", "measured"],
        [
            ("recovered node final status", "not clean (re-labeled)", state.status((5, 5, 3)).value),
            ("(3,5,3) status", "stays disabled (2 faults, diff dims)", state.status((3, 5, 3)).value),
            ("re-stabilization rounds", "small (block-local)", result.rounds),
            ("blocks after recovery", "shrunk / split (Fig. 4(b))", len(blocks)),
            (
                "all members within old extent",
                "yes",
                all(FIGURE1_EXTENT.contains_region(b.extent) for b in blocks),
            ),
            (
                "total block members (before -> after)",
                "12 -> fewer",
                f"12 -> {sum(len(b.nodes) for b in blocks)}",
            ),
        ],
    )

    assert state.status((3, 5, 3)) is NodeStatus.DISABLED
    assert state.status((5, 5, 3)) is not NodeStatus.CLEAN
    assert sum(len(b.nodes) for b in blocks) < 12
    assert all(FIGURE1_EXTENT.contains_region(b.extent) for b in blocks)
